/**
 * @file
 * Target power system: storage capacitor + harvester + loads +
 * comparators.
 *
 * This is the analog core of the intermittent execution model
 * (paper Fig 2): the harvester charges the capacitor through its
 * source resistance; when the voltage reaches the turn-on threshold
 * the device boots and its load discharges the capacitor; when the
 * voltage falls below the brown-out threshold the device powers off
 * and the cycle repeats.
 *
 * Loads are piecewise-constant current sinks owned by device
 * components (MCU core, peripherals, LEDs). Sources are signed
 * current functions of (voltage, time) — the harvester, EDB's
 * charge/discharge circuit, tethered supplies and per-pin leakage all
 * inject through this interface, which is what makes
 * energy-interference a *measured* quantity in this reproduction.
 */

#ifndef EDB_ENERGY_POWER_SYSTEM_HH
#define EDB_ENERGY_POWER_SYSTEM_HH

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "energy/capacitor.hh"
#include "energy/harvester.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::energy {

/** Static electrical parameters of a target power system. */
struct PowerSystemConfig
{
    /** Storage capacitance (WISP 5: 47 uF). */
    double capacitanceF = 47e-6;
    /** Comparator turn-on threshold (WISP 5: 2.4 V). */
    double turnOnVolts = 2.4;
    /** Comparator brown-out threshold (WISP 5: 1.8 V). */
    double brownOutVolts = 1.8;
    /** Board leakage while powered off. */
    double offLeakageAmps = 1.0e-6;
    /** Regulator nominal output. */
    double regulatorVolts = 2.0;
    /** Protection clamp on the capacitor voltage. */
    double maxVolts = 5.0;
    /** Initial capacitor voltage. */
    double initialVolts = 0.0;
    /**
     * Fire the power-on transition from `start()` when the initial
     * voltage is already above turn-on. Historically the comparator
     * only reports *crossings*, so a pre-charged device stayed
     * dormant until its first brown-out/recharge cycle; fleet worlds
     * opt in so a charged tag executes from tick zero. Off by
     * default to preserve existing single-world trajectories.
     */
    bool bootOnStart = false;
    /**
     * Relative sigma of multiplicative harvester noise, resampled
     * each integration step. Ambient RF power fluctuates with
     * fading, reader frequency hopping and antenna motion; this
     * keeps charge-discharge cycles from phase-locking to the
     * program loop the way an ideal constant source would.
     */
    double harvestNoiseSigma = 0.05;
    /** Integration sub-step ceiling. */
    sim::Tick maxStep = 5 * sim::oneUs;
    /** Self-tick period that keeps the model advancing while idle. */
    sim::Tick idleTickPeriod = 20 * sim::oneUs;
    /**
     * Amortized-integration fast path: cache the enabled-load sum
     * behind a dirty flag, hoist the ticks->seconds conversion of
     * full-size sub-steps out of the integration loop, and skip the
     * harvest-noise branch when sigma is zero. Bit-identical to the
     * reference path (same sub-step sequence, same RNG draws, same
     * double arithmetic); the flag exists so the determinism suite
     * can diff the two.
     */
    bool fastIntegration = true;
};

/**
 * Integrates the capacitor voltage under harvester + load currents
 * and drives the power-good comparator with hysteresis.
 */
class PowerSystem : public sim::Component
{
  public:
    using LoadHandle = std::size_t;
    using SourceHandle = std::size_t;
    /** Signed current into the capacitor, amps, as f(volts, seconds). */
    using SourceFn = std::function<double(double, double)>;
    /** Power-state listener: called with true on turn-on, false on
     *  brown-out. */
    using PowerListener = std::function<void(bool)>;

    PowerSystem(sim::Simulator &simulator, std::string component_name,
                PowerSystemConfig config, const Harvester *harvester);

    /** Begin self-ticking; call once after wiring up the device. */
    void start();

    /// @name Loads (piecewise-constant current sinks)
    /// @{
    LoadHandle addLoad(std::string load_name, double amps = 0.0,
                       bool enabled = true);
    void setLoadCurrent(LoadHandle handle, double amps);
    void setLoadEnabled(LoadHandle handle, bool enabled);
    double loadCurrent(LoadHandle handle) const;
    bool loadEnabled(LoadHandle handle) const;
    /** Sum of all enabled load currents right now. */
    double
    totalLoadAmps() const
    {
        if (loadSumValid)
            return loadSum;
        double total = 0.0;
        for (const auto &load : loads) {
            if (load.enabled)
                total += load.amps;
        }
        // Same summation order as always, so the cached value is
        // bit-identical to a fresh recomputation.
        if (cfg.fastIntegration) {
            loadSum = total;
            loadSumValid = true;
        }
        return total;
    }
    /// @}

    /// @name Sources (signed current injections, f(volts, seconds))
    /// @{
    /**
     * Attach a source. `worst_draw_amps` is the caller's bound on
     * how much current the source can ever pull *out of* the
     * capacitor (max over all volts/time of `max(0, -fn(v, t))`);
     * the block-batched drain uses it to prove a whole instruction
     * block cannot brown out. The default — unbounded — is always
     * safe: it merely keeps the block fast path off while the source
     * is enabled.
     */
    SourceHandle addSource(std::string source_name, SourceFn fn,
                           double worst_draw_amps =
                               std::numeric_limits<double>::infinity());
    void setSourceEnabled(SourceHandle handle, bool enabled);
    /// @}

    /** Integrate the analog state up to `when` (idempotent). */
    void advanceTo(sim::Tick when);

    /**
     * Single-sub-step drain used by the MCU's per-instruction fast
     * path: exactly equivalent to `advanceTo(lastUpdateTick() + dt)`
     * for `0 < dt <= maxStep` (one integration sub-step, then the
     * comparator), but the caller supplies the precomputed
     * ticks->seconds conversion of `dt`, which the MCU caches per
     * decoded instruction. `dtSeconds` must equal
     * `sim::secondsFromTicks(dt)`. Falls back to advanceTo when
     * `dt > maxStep`. Defined inline below so the interpreter's
     * per-instruction call flattens into one leaf.
     */
    void
    drainStep(sim::Tick dt, double dtSeconds)
    {
        if (integrating || dt <= 0)
            return;
        if (dt > cfg.maxStep) {
            advanceTo(lastUpdate + dt);
            return;
        }
        // One sub-step, exactly as advanceTo(lastUpdate + dt) would.
        integrating = true;
        integrateStep(dtSeconds, sim::secondsFromTicks(lastUpdate));
        lastUpdate += dt;
        updateComparator();
        integrating = false;
    }

    /** One precomputed integration sub-step of a superblock's drain
     *  schedule: `dtSeconds` must equal `secondsFromTicks(dt)` and
     *  `0 < dt <= maxStep`. */
    struct DrainStep
    {
        sim::Tick dt = 0;
        double dtSeconds = 0.0;
    };

    /**
     * Conservative pre-check for `drainBlock`: can the capacitor be
     * drained for `worst_seconds` at the worst admissible rate
     * without ever crossing the brown-out threshold?
     *
     * The bound assumes zero harvester inflow — sound because every
     * `Harvester::currentInto` is non-negative and the noise
     * multiplier clamps at zero — and charges every enabled source
     * its declared `worst_draw_amps` (undeclared sources bound to
     * infinity, which simply fails the check). `blockDrainMargin`
     * absorbs the sub-1e-13 V accumulation slop between this single
     * product and the per-step forward-Euler arithmetic.
     */
    bool
    blockDrainAdmissible(double worst_seconds) const
    {
        if (!powered || integrating)
            return false;
        double draw = totalLoadAmps();
        for (const auto &src : sources) {
            if (src.enabled)
                draw += src.worstDrawAmps;
        }
        const double drop = draw * worst_seconds / cap.capacitance();
        return cap.voltage() - drop >
               cfg.brownOutVolts + blockDrainMargin;
    }

    /**
     * Monotonic counter bumped whenever the worst-case draw rate can
     * have changed (a load or source added, retuned, or switched).
     * Superblocks key their cached admission threshold on it, which
     * turns the steady-state admission check into one comparison.
     */
    std::uint64_t drawEpoch() const { return drawEpoch_; }

    /**
     * The voltage `admissibleAt` compares against for a fixed
     * worst-case drain duration; stays valid until `drawEpoch()`
     * moves. An enabled source with an unbounded draw declaration
     * yields +infinity, which simply fails every admission.
     */
    double
    admissionThresholdVolts(double worst_seconds) const
    {
        double draw = totalLoadAmps();
        for (const auto &src : sources) {
            if (src.enabled)
                draw += src.worstDrawAmps;
        }
        return cfg.brownOutVolts + blockDrainMargin +
               draw * worst_seconds / cap.capacitance();
    }

    /**
     * Cached-threshold admission: with `threshold_volts` from
     * `admissionThresholdVolts(s)` at the current draw epoch, this
     * decides exactly what `blockDrainAdmissible(s)` decides (the
     * rearranged comparison can only disagree within one ulp, noise
     * that `blockDrainMargin` dwarfs by seven orders of magnitude —
     * and either verdict is sound: admission is a conservative gate,
     * not an architectural effect).
     */
    bool
    admissibleAt(double threshold_volts) const
    {
        return powered && !integrating &&
               cap.voltage() > threshold_volts;
    }

    /**
     * Loop-fused form of `drainBlock`: the superblock executor owns
     * one of these across a dispatch and feeds each retired thunk's
     * exact sub-step to `substep` as it commits. The forward-Euler
     * update is a divide-latency chain carried through the voltage
     * (`(flatVoc - v) / flatRsrc`, then `(dq_in - dq_out) / capF`);
     * run after the fact over a whole block, that chain is the
     * critical path and nothing overlaps it. Interleaved with the
     * thunk loop, the out-of-order core hides it behind the next
     * thunk's architectural work. This is exactly the old batched
     * loop split at its loop boundary: the constructor performs the
     * same hoisted loads, `substep` the same per-sub-step arithmetic
     * (same RNG draws in the same order), `commit` the same
     * write-back — bit-identical either way.
     *
     * The caller must have passed `blockDrainAdmissible` over the
     * schedule's worst-case duration, which is what licenses skipping
     * the per-step comparator: the voltage provably never reaches the
     * brown-out threshold, and a powered comparator that observes no
     * crossing is a no-op.
     */
    class BlockDrainer
    {
      public:
        explicit BlockDrainer(PowerSystem &power)
            : ps(power), v(power.cap.voltage()),
              capF(power.cap.capacitance()),
              // Loads are piecewise-constant and nothing inside a
              // block can switch one, so the reference path would
              // recompute the same sum (in the same order) every
              // sub-step.
              outAmps(power.totalLoadAmps()), ci(power.chargeIn),
              co(power.chargeOut), lu(power.lastUpdate)
        {
            for (const auto &src : ps.sources)
                anySource |= src.enabled;
            needSeconds = !ps.flatSource || anySource;
            ps.integrating = true;
        }

        void
        substep(const DrainStep &s)
        {
            const double dt_seconds = s.dtSeconds;
            const double t_seconds =
                needSeconds ? sim::secondsFromTicks(lu) : 0.0;
            double in_amps;
            if (ps.flatSource) {
                double i = (ps.flatVoc - v) / ps.flatRsrc;
                in_amps = i > 0.0 ? i : 0.0;
            } else {
                in_amps = ps.harvester->currentInto(v, t_seconds);
            }
            if (ps.noiseEnabled && in_amps > 0.0) {
                double noise =
                    1.0 +
                    ps.sim().rng().gaussian(ps.cfg.harvestNoiseSigma);
                in_amps *= noise < 0.0 ? 0.0 : noise;
            }
            if (anySource) {
                for (const auto &src : ps.sources) {
                    if (src.enabled)
                        in_amps += src.fn(v, t_seconds);
                }
            }
            const double dq_in = in_amps * dt_seconds;
            const double dq_out = outAmps * dt_seconds;
            ci += dq_in;
            co += dq_out;
            // Capacitor::addCharge inlined, then the maxVolts clamp,
            // exactly as integrateStep leaves the voltage.
            v += (dq_in - dq_out) / capF;
            if (v < 0.0)
                v = 0.0;
            if (v > ps.cfg.maxVolts)
                v = ps.cfg.maxVolts;
            lu += s.dt;
        }

        /** Write the accumulated analog state back. Call exactly
         *  once; a no-op write-back when no substep ran. */
        void
        commit()
        {
            ps.chargeIn = ci;
            ps.chargeOut = co;
            ps.cap.setVoltage(v);
            ps.lastUpdate = lu;
            ps.integrating = false;
        }

      private:
        PowerSystem &ps;
        double v;
        const double capF;
        const double outAmps;
        double ci;
        double co;
        sim::Tick lu;
        bool anySource = false;
        bool needSeconds = true;
    };

    /**
     * Batched per-block drain: integrate the exact sub-step sequence
     * `steps[0..n)` in one call. Bit-identical to issuing
     * `drainStep(steps[k].dt, steps[k].dtSeconds)` once per step —
     * same forward-Euler arithmetic, same RNG draws in the same
     * order, same charge accounting — with the per-call loads hoisted
     * out of the loop (see BlockDrainer above for the admission
     * precondition and the comparator-skip argument).
     */
    void
    drainBlock(const DrainStep *steps, std::size_t n)
    {
        BlockDrainer drain(*this);
        for (std::size_t k = 0; k < n; ++k)
            drain.substep(steps[k]);
        drain.commit();
    }

    /**
     * Instantaneous charge withdrawal (coulombs), used by the NV
     * memory backend to bill energy-per-write against the storage
     * capacitor. Applied at the capacitor directly — no integration
     * step — then the comparator re-evaluates, so a write burst can
     * brown the device out mid-burst exactly like any other load.
     * No-op while an integration is in flight (batched block drains
     * never interleave with NV billing; the superblock tier is off
     * whenever an active NV backend is attached).
     */
    void
    drawCharge(double coulombs)
    {
        if (coulombs <= 0.0 || integrating)
            return;
        chargeOut += coulombs;
        cap.addCharge(-coulombs);
        updateComparator();
    }

    /** Time the analog state has been integrated up to. */
    sim::Tick lastUpdateTick() const { return lastUpdate; }

    /** Capacitor voltage after advancing to the present time. */
    double voltage();

    /** Capacitor voltage without advancing (for use in listeners). */
    double voltageNoAdvance() const { return cap.voltage(); }

    /** Regulated rail: min(Vcap, regulator nominal). Drops with Vcap
     *  during power failure, as the paper notes in Section 4.1.2. */
    double regulatedVoltage();

    /** Comparator output: true between turn-on and brown-out. */
    bool poweredOn() const { return powered; }

    /** Register a power-state listener. */
    void addPowerListener(PowerListener listener);

    /** Stored energy in joules at present voltage. */
    double storedEnergy() { return cap.energyAt(voltage()); }

    /** Max storable energy (at turn-on voltage), the paper's "%* of
     *  storage capacity" denominator. */
    double
    maxEnergy() const
    {
        return cap.energyAt(cfg.turnOnVolts);
    }

    /** Direct capacitor access for instruments and tests. */
    Capacitor &capacitor() { return cap; }
    const PowerSystemConfig &config() const { return cfg; }

    /** Swap the harvester model (non-owning). */
    void
    setHarvester(const Harvester *h)
    {
        harvester = h;
        refreshFlatSource();
    }

    /// @name Charge accounting (for conservation checks)
    /// @{
    double cumulativeChargeIn() const { return chargeIn; }
    double cumulativeChargeOut() const { return chargeOut; }
    /// @}

    /** Number of turn-on events since construction. */
    std::uint64_t bootCount() const { return boots; }
    /** Number of brown-out events since construction. */
    std::uint64_t brownOutCount() const { return brownOuts; }

    /**
     * Serialize the full analog + comparator state: capacitor
     * voltage, integrator bookkeeping, charge accounting, comparator
     * counters, per-load/per-source switch state and the pending
     * self-tick event. Loads and sources are saved positionally, so
     * save and restore sides must be wired identically (same device
     * assembly, same construction order).
     */
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer);

  private:
    struct Load
    {
        std::string name;
        double amps;
        bool enabled;
    };

    struct Source
    {
        std::string name;
        SourceFn fn;
        bool enabled;
        /** Declared bound on current pulled out of the capacitor. */
        double worstDrawAmps;
    };

    /** Safety margin of the block-drain pre-check (volts). The check
     *  compares one product against per-step summation; across the
     *  <= 32 sub-steps of a block the floating-point disagreement is
     *  bounded well below 1e-12 V, so a nanovolt dwarfs it. */
    static constexpr double blockDrainMargin = 1e-9;

    /** One forward-Euler sub-step (defined inline, it is the single
     *  hottest function in the simulator). */
    void
    integrateStep(double dt_seconds, double t_seconds)
    {
        double v = cap.voltage();
        double in_amps;
        if (flatSource) {
            // Inlined TheveninHarvester::currentInto — identical
            // expression, including the ternary's signed-zero
            // behaviour.
            double i = (flatVoc - v) / flatRsrc;
            in_amps = i > 0.0 ? i : 0.0;
        } else {
            in_amps = harvester->currentInto(v, t_seconds);
        }
        if (noiseEnabled && in_amps > 0.0) {
            double n = 1.0 + sim().rng().gaussian(cfg.harvestNoiseSigma);
            in_amps *= n < 0.0 ? 0.0 : n;
        }
        for (const auto &src : sources) {
            if (src.enabled)
                in_amps += src.fn(v, t_seconds);
        }
        double out_amps = powered ? totalLoadAmps() : cfg.offLeakageAmps;
        double dq_in = in_amps * dt_seconds;
        double dq_out = out_amps * dt_seconds;
        chargeIn += dq_in;
        chargeOut += dq_out;
        cap.addCharge(dq_in - dq_out);
        if (cap.voltage() > cfg.maxVolts)
            cap.setVoltage(cfg.maxVolts);
    }

    void
    updateComparator()
    {
        bool next = powered;
        if (powered && cap.voltage() < cfg.brownOutVolts) {
            next = false;
            ++brownOuts;
        } else if (!powered && cap.voltage() >= cfg.turnOnVolts) {
            next = true;
            ++boots;
        }
        if (next == powered)
            return;
        powered = next;
        for (const auto &listener : listeners)
            listener(powered);
    }

    void tick();
    void
    invalidateLoadSum()
    {
        loadSumValid = false;
        ++drawEpoch_;
    }

    /** Re-probe the harvester for the inlineable constant-Thevenin
     *  form (fastIntegration only; the arithmetic is identical). */
    void
    refreshFlatSource()
    {
        flatSource = cfg.fastIntegration && harvester &&
                     harvester->theveninParams(flatVoc, flatRsrc);
    }

    PowerSystemConfig cfg;
    const Harvester *harvester;
    Capacitor cap;
    std::vector<Load> loads;
    std::vector<Source> sources;
    std::vector<PowerListener> listeners;
    sim::Tick lastUpdate = 0;
    bool powered = false;
    bool integrating = false;
    bool started = false;
    /** Cached sum of enabled load currents (fastIntegration). */
    mutable double loadSum = 0.0;
    mutable bool loadSumValid = false;
    /** See drawEpoch(); starts above any block's zero stamp. */
    std::uint64_t drawEpoch_ = 1;
    /** secondsFromTicks(cfg.maxStep), hoisted out of advanceTo. */
    double maxStepSeconds = 0.0;
    bool noiseEnabled = false;
    /** Harvester devirtualization (see refreshFlatSource). */
    bool flatSource = false;
    double flatVoc = 0.0;
    double flatRsrc = 1.0;
    double chargeIn = 0.0;
    double chargeOut = 0.0;
    std::uint64_t boots = 0;
    std::uint64_t brownOuts = 0;
    /** Pending self-tick (id + absolute due time, for snapshots). */
    sim::EventId tickEvent = sim::invalidEventId;
    sim::Tick tickDueAt = 0;
};

} // namespace edb::energy

#endif // EDB_ENERGY_POWER_SYSTEM_HH
