/**
 * @file
 * Ambient energy harvester models.
 *
 * The paper's target (WISP 5) harvests RF energy from an RFID reader;
 * the defining property (Section 2.1) is the *high source resistance*
 * of ambient sources, which produces the characteristic sawtooth RC
 * charge behaviour. We model harvesters as a Thevenin equivalent:
 * open-circuit voltage behind a source resistance, with a keeper diode
 * preventing back-flow into the harvester.
 */

#ifndef EDB_ENERGY_HARVESTER_HH
#define EDB_ENERGY_HARVESTER_HH

#include <memory>
#include <vector>

#include "sim/fault.hh"

namespace edb::energy {

/**
 * Abstract energy harvester: supplies current into the storage
 * capacitor as a function of the capacitor voltage and time.
 */
class Harvester
{
  public:
    virtual ~Harvester() = default;

    /**
     * Instantaneous current delivered into the storage element.
     * @param cap_volts Present capacitor voltage.
     * @param seconds Simulated time (for time-varying sources).
     * @return Current in amps, never negative (keeper diode). This
     *         is a hard contract, not a convention: the power
     *         system's block-drain pre-check
     *         (PowerSystem::blockDrainAdmissible) assumes zero
     *         inflow is the worst case a harvester can present.
     */
    virtual double currentInto(double cap_volts, double seconds) const = 0;

    /** Open-circuit voltage: the asymptotic charge level. */
    virtual double openCircuitVoltage(double seconds) const = 0;

    /**
     * Constant-Thevenin snapshot: harvesters whose currentInto is
     * `max(0, (voc - v) / rsrc)` with *time-invariant* parameters may
     * report them here, letting the integrator inline the arithmetic
     * instead of making a virtual call per sub-step. Harvesters with
     * any time-varying behaviour (fades, carrier gating, profiles)
     * must return false. Default: false.
     */
    virtual bool
    theveninParams(double &voc, double &rsrc) const
    {
        (void)voc;
        (void)rsrc;
        return false;
    }
};

/** Fixed Thevenin source: Voc behind Rsrc. */
class TheveninHarvester : public Harvester
{
  public:
    TheveninHarvester(double voc_volts, double rsrc_ohms);

    double currentInto(double cap_volts, double seconds) const override;
    double openCircuitVoltage(double seconds) const override;

    bool
    theveninParams(double &voc, double &rsrc) const override
    {
        voc = voc_;
        rsrc = rsrc_;
        return true;
    }

    double voc() const { return voc_; }
    double rsrc() const { return rsrc_; }

  private:
    double voc_;
    double rsrc_;
};

/**
 * RF harvester fed by an RFID reader.
 *
 * Received power falls off with the square of the reader distance;
 * the model maps (transmit power, distance) to a Thevenin source
 * calibrated so that a 30 dBm reader at 1 m yields the WISP-like
 * charge dynamics used in the paper's evaluation setup (Section 5.1:
 * "the amount of harvestable energy is inversely proportional to this
 * distance").
 */
class RfHarvester : public Harvester
{
  public:
    /**
     * @param tx_power_dbm Reader transmit power (paper: up to 30 dBm).
     * @param distance_m Reader antenna to tag distance (paper: 1 m).
     */
    RfHarvester(double tx_power_dbm, double distance_m);

    double currentInto(double cap_volts, double seconds) const override;
    double openCircuitVoltage(double seconds) const override;

    /** Move the tag; takes effect immediately. */
    void setDistance(double distance_m);

    /** Gate the carrier on/off (reader duty cycling). */
    void setCarrierOn(bool on) { carrierOn = on; }
    bool carrierOn_() const { return carrierOn; }

    double distance() const { return distanceM; }
    double sourceResistance() const { return rsrc; }

    /** Rectifier open-circuit voltage used by the model. */
    static constexpr double rectifierVoc = 3.2;

  private:
    void recompute();

    double txPowerDbm;
    double distanceM;
    double rsrc = 1.0;
    bool carrierOn = true;
};

/**
 * Piecewise-linear time-varying Thevenin source, e.g. a recorded
 * solar profile (the CCTS-style simulation in related work). Points
 * are (seconds, voc, rsrc); values are interpolated between points
 * and held after the last point.
 */
class ProfileHarvester : public Harvester
{
  public:
    struct Point
    {
        double seconds;
        double voc;
        double rsrc;
    };

    explicit ProfileHarvester(std::vector<Point> points);

    double currentInto(double cap_volts, double seconds) const override;
    double openCircuitVoltage(double seconds) const override;

  private:
    Point at(double seconds) const;

    std::vector<Point> profile;
};

/** A harvester that supplies nothing (bench operation on a supply). */
class NullHarvester : public Harvester
{
  public:
    double currentInto(double, double) const override { return 0.0; }
    double openCircuitVoltage(double) const override { return 0.0; }
};

/**
 * Decorator that blanks an underlying harvester during the fade
 * windows of a `sim::FaultPlan` (RF fades: reader duty cycling,
 * antenna occlusion). Outside fades — or with injection disabled —
 * it is transparent.
 */
class FadedHarvester : public Harvester
{
  public:
    FadedHarvester(const Harvester &base_harvester,
                   const sim::FaultInjector &fault_injector)
        : base(base_harvester), injector(fault_injector)
    {
    }

    double
    currentInto(double cap_volts, double seconds) const override
    {
        if (injector.inFadeSeconds(seconds))
            return 0.0;
        return base.currentInto(cap_volts, seconds);
    }

    double
    openCircuitVoltage(double seconds) const override
    {
        if (injector.inFadeSeconds(seconds))
            return 0.0;
        return base.openCircuitVoltage(seconds);
    }

  private:
    const Harvester &base;
    const sim::FaultInjector &injector;
};

} // namespace edb::energy

#endif // EDB_ENERGY_HARVESTER_HH
