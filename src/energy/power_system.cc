#include "energy/power_system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace edb::energy {

PowerSystem::PowerSystem(sim::Simulator &simulator,
                         std::string component_name,
                         PowerSystemConfig config,
                         const Harvester *harvester_model)
    : sim::Component(simulator, std::move(component_name)),
      cfg(config),
      harvester(harvester_model),
      cap(config.capacitanceF, config.initialVolts)
{
    if (cfg.capacitanceF <= 0.0)
        sim::fatal("PowerSystem: capacitance must be > 0");
    if (cfg.brownOutVolts >= cfg.turnOnVolts)
        sim::fatal("PowerSystem: brown-out must be below turn-on");
    if (!harvester)
        sim::fatal("PowerSystem: harvester must not be null");
    powered = cap.voltage() >= cfg.turnOnVolts;
    lastUpdate = simulator.now();
}

void
PowerSystem::start()
{
    if (started)
        return;
    started = true;
    tick();
}

void
PowerSystem::tick()
{
    advanceTo(now());
    sim().scheduleIn(cfg.idleTickPeriod, [this] { tick(); });
}

PowerSystem::LoadHandle
PowerSystem::addLoad(std::string load_name, double amps, bool enabled)
{
    advanceTo(now());
    loads.push_back(Load{std::move(load_name), amps, enabled});
    return loads.size() - 1;
}

void
PowerSystem::setLoadCurrent(LoadHandle handle, double amps)
{
    advanceTo(now());
    loads.at(handle).amps = amps;
}

void
PowerSystem::setLoadEnabled(LoadHandle handle, bool enabled)
{
    advanceTo(now());
    loads.at(handle).enabled = enabled;
}

double
PowerSystem::loadCurrent(LoadHandle handle) const
{
    return loads.at(handle).amps;
}

bool
PowerSystem::loadEnabled(LoadHandle handle) const
{
    return loads.at(handle).enabled;
}

double
PowerSystem::totalLoadAmps() const
{
    double total = 0.0;
    for (const auto &load : loads) {
        if (load.enabled)
            total += load.amps;
    }
    return total;
}

PowerSystem::SourceHandle
PowerSystem::addSource(std::string source_name, SourceFn fn)
{
    advanceTo(now());
    sources.push_back(Source{std::move(source_name), std::move(fn), true});
    return sources.size() - 1;
}

void
PowerSystem::setSourceEnabled(SourceHandle handle, bool enabled)
{
    advanceTo(now());
    sources.at(handle).enabled = enabled;
}

void
PowerSystem::addPowerListener(PowerListener listener)
{
    listeners.push_back(std::move(listener));
}

void
PowerSystem::integrateStep(double dt_seconds, double t_seconds)
{
    double v = cap.voltage();
    double in_amps = harvester->currentInto(v, t_seconds);
    if (cfg.harvestNoiseSigma > 0.0 && in_amps > 0.0) {
        double n = 1.0 + sim().rng().gaussian(cfg.harvestNoiseSigma);
        in_amps *= n < 0.0 ? 0.0 : n;
    }
    for (const auto &src : sources) {
        if (src.enabled)
            in_amps += src.fn(v, t_seconds);
    }
    double out_amps = powered ? totalLoadAmps() : cfg.offLeakageAmps;
    double dq_in = in_amps * dt_seconds;
    double dq_out = out_amps * dt_seconds;
    chargeIn += dq_in;
    chargeOut += dq_out;
    cap.addCharge(dq_in - dq_out);
    if (cap.voltage() > cfg.maxVolts)
        cap.setVoltage(cfg.maxVolts);
}

void
PowerSystem::updateComparator()
{
    bool next = powered;
    if (powered && cap.voltage() < cfg.brownOutVolts) {
        next = false;
        ++brownOuts;
    } else if (!powered && cap.voltage() >= cfg.turnOnVolts) {
        next = true;
        ++boots;
    }
    if (next == powered)
        return;
    powered = next;
    for (const auto &listener : listeners)
        listener(powered);
}

void
PowerSystem::advanceTo(sim::Tick when)
{
    if (integrating || when <= lastUpdate)
        return;
    integrating = true;
    sim::Tick t = lastUpdate;
    while (t < when) {
        sim::Tick step = std::min<sim::Tick>(cfg.maxStep, when - t);
        integrateStep(sim::secondsFromTicks(step),
                      sim::secondsFromTicks(t));
        t += step;
        lastUpdate = t;
        updateComparator();
    }
    integrating = false;
}

double
PowerSystem::voltage()
{
    advanceTo(now());
    return cap.voltage();
}

double
PowerSystem::regulatedVoltage()
{
    return std::min(voltage(), cfg.regulatorVolts);
}

} // namespace edb::energy
