#include "energy/power_system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::energy {

PowerSystem::PowerSystem(sim::Simulator &simulator,
                         std::string component_name,
                         PowerSystemConfig config,
                         const Harvester *harvester_model)
    : sim::Component(simulator, std::move(component_name)),
      cfg(config),
      harvester(harvester_model),
      cap(config.capacitanceF, config.initialVolts)
{
    if (cfg.capacitanceF <= 0.0)
        sim::fatal("PowerSystem: capacitance must be > 0");
    if (cfg.brownOutVolts >= cfg.turnOnVolts)
        sim::fatal("PowerSystem: brown-out must be below turn-on");
    if (!harvester)
        sim::fatal("PowerSystem: harvester must not be null");
    powered = cap.voltage() >= cfg.turnOnVolts;
    lastUpdate = simulator.now();
    maxStepSeconds = sim::secondsFromTicks(cfg.maxStep);
    noiseEnabled = cfg.harvestNoiseSigma > 0.0;
    refreshFlatSource();
}

void
PowerSystem::start()
{
    if (started)
        return;
    started = true;
    if (cfg.bootOnStart && powered) {
        // A pre-charged device's comparator is already high at
        // power-up: report the boot the crossing detector can't see.
        ++boots;
        for (const auto &listener : listeners)
            listener(true);
    }
    tick();
}

void
PowerSystem::tick()
{
    advanceTo(now());
    tickDueAt = now() + cfg.idleTickPeriod;
    tickEvent = sim().schedule(tickDueAt, [this] { tick(); });
}

PowerSystem::LoadHandle
PowerSystem::addLoad(std::string load_name, double amps, bool enabled)
{
    advanceTo(now());
    loads.push_back(Load{std::move(load_name), amps, enabled});
    invalidateLoadSum();
    return loads.size() - 1;
}

void
PowerSystem::setLoadCurrent(LoadHandle handle, double amps)
{
    advanceTo(now());
    loads.at(handle).amps = amps;
    invalidateLoadSum();
}

void
PowerSystem::setLoadEnabled(LoadHandle handle, bool enabled)
{
    advanceTo(now());
    loads.at(handle).enabled = enabled;
    invalidateLoadSum();
}

double
PowerSystem::loadCurrent(LoadHandle handle) const
{
    return loads.at(handle).amps;
}

bool
PowerSystem::loadEnabled(LoadHandle handle) const
{
    return loads.at(handle).enabled;
}

PowerSystem::SourceHandle
PowerSystem::addSource(std::string source_name, SourceFn fn,
                       double worst_draw_amps)
{
    advanceTo(now());
    sources.push_back(Source{std::move(source_name), std::move(fn),
                             true, worst_draw_amps});
    ++drawEpoch_;
    return sources.size() - 1;
}

void
PowerSystem::setSourceEnabled(SourceHandle handle, bool enabled)
{
    advanceTo(now());
    sources.at(handle).enabled = enabled;
    ++drawEpoch_;
}

void
PowerSystem::addPowerListener(PowerListener listener)
{
    listeners.push_back(std::move(listener));
}

void
PowerSystem::advanceTo(sim::Tick when)
{
    if (integrating || when <= lastUpdate)
        return;
    integrating = true;
    sim::Tick t = lastUpdate;
    const bool fast = cfg.fastIntegration;
    while (t < when) {
        sim::Tick step = std::min<sim::Tick>(cfg.maxStep, when - t);
        // Full-size sub-steps reuse the hoisted conversion; only the
        // final partial step pays the divide. Identical value either
        // way.
        double step_sec = fast && step == cfg.maxStep
                              ? maxStepSeconds
                              : sim::secondsFromTicks(step);
        integrateStep(step_sec, sim::secondsFromTicks(t));
        t += step;
        lastUpdate = t;
        updateComparator();
    }
    integrating = false;
}

double
PowerSystem::voltage()
{
    advanceTo(now());
    return cap.voltage();
}

double
PowerSystem::regulatedVoltage()
{
    return std::min(voltage(), cfg.regulatorVolts);
}

void
PowerSystem::saveState(sim::SnapshotWriter &w) const
{
    w.section("power");
    w.f64(cap.voltage());
    w.tick(lastUpdate);
    w.boolean(powered);
    w.boolean(started);
    w.f64(chargeIn);
    w.f64(chargeOut);
    w.u64(boots);
    w.u64(brownOuts);
    w.u32(static_cast<std::uint32_t>(loads.size()));
    for (const auto &load : loads) {
        w.f64(load.amps);
        w.boolean(load.enabled);
    }
    w.u32(static_cast<std::uint32_t>(sources.size()));
    for (const auto &src : sources)
        w.boolean(src.enabled);
    w.pendingEvent(started ? tickEvent : sim::invalidEventId,
                   tickDueAt);
}

void
PowerSystem::restoreState(sim::SnapshotReader &r,
                          sim::EventRearmer &rearmer)
{
    r.section("power");
    // Raw member writes only: going through setVoltage/setLoad*
    // would advanceTo(now()) and insert integration sub-steps the
    // original run never took, breaking resume equivalence.
    cap.setVoltage(r.f64());
    lastUpdate = r.tick();
    powered = r.boolean();
    started = r.boolean();
    chargeIn = r.f64();
    chargeOut = r.f64();
    boots = r.u64();
    brownOuts = r.u64();
    std::uint32_t nloads = r.u32();
    if (nloads == loads.size()) {
        for (auto &load : loads) {
            load.amps = r.f64();
            load.enabled = r.boolean();
        }
    }
    std::uint32_t nsources = r.u32();
    if (nsources == sources.size()) {
        for (auto &src : sources)
            src.enabled = r.boolean();
    }
    invalidateLoadSum();
    integrating = false;
    if (tickEvent != sim::invalidEventId) {
        sim().cancel(tickEvent);
        tickEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { tick(); },
        [this](sim::EventId id, sim::Tick due) {
            tickEvent = id;
            tickDueAt = due;
        });
}

} // namespace edb::energy
