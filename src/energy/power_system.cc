#include "energy/power_system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace edb::energy {

PowerSystem::PowerSystem(sim::Simulator &simulator,
                         std::string component_name,
                         PowerSystemConfig config,
                         const Harvester *harvester_model)
    : sim::Component(simulator, std::move(component_name)),
      cfg(config),
      harvester(harvester_model),
      cap(config.capacitanceF, config.initialVolts)
{
    if (cfg.capacitanceF <= 0.0)
        sim::fatal("PowerSystem: capacitance must be > 0");
    if (cfg.brownOutVolts >= cfg.turnOnVolts)
        sim::fatal("PowerSystem: brown-out must be below turn-on");
    if (!harvester)
        sim::fatal("PowerSystem: harvester must not be null");
    powered = cap.voltage() >= cfg.turnOnVolts;
    lastUpdate = simulator.now();
    maxStepSeconds = sim::secondsFromTicks(cfg.maxStep);
    noiseEnabled = cfg.harvestNoiseSigma > 0.0;
    refreshFlatSource();
}

void
PowerSystem::start()
{
    if (started)
        return;
    started = true;
    tick();
}

void
PowerSystem::tick()
{
    advanceTo(now());
    sim().scheduleIn(cfg.idleTickPeriod, [this] { tick(); });
}

PowerSystem::LoadHandle
PowerSystem::addLoad(std::string load_name, double amps, bool enabled)
{
    advanceTo(now());
    loads.push_back(Load{std::move(load_name), amps, enabled});
    invalidateLoadSum();
    return loads.size() - 1;
}

void
PowerSystem::setLoadCurrent(LoadHandle handle, double amps)
{
    advanceTo(now());
    loads.at(handle).amps = amps;
    invalidateLoadSum();
}

void
PowerSystem::setLoadEnabled(LoadHandle handle, bool enabled)
{
    advanceTo(now());
    loads.at(handle).enabled = enabled;
    invalidateLoadSum();
}

double
PowerSystem::loadCurrent(LoadHandle handle) const
{
    return loads.at(handle).amps;
}

bool
PowerSystem::loadEnabled(LoadHandle handle) const
{
    return loads.at(handle).enabled;
}

PowerSystem::SourceHandle
PowerSystem::addSource(std::string source_name, SourceFn fn)
{
    advanceTo(now());
    sources.push_back(Source{std::move(source_name), std::move(fn), true});
    return sources.size() - 1;
}

void
PowerSystem::setSourceEnabled(SourceHandle handle, bool enabled)
{
    advanceTo(now());
    sources.at(handle).enabled = enabled;
}

void
PowerSystem::addPowerListener(PowerListener listener)
{
    listeners.push_back(std::move(listener));
}

void
PowerSystem::advanceTo(sim::Tick when)
{
    if (integrating || when <= lastUpdate)
        return;
    integrating = true;
    sim::Tick t = lastUpdate;
    const bool fast = cfg.fastIntegration;
    while (t < when) {
        sim::Tick step = std::min<sim::Tick>(cfg.maxStep, when - t);
        // Full-size sub-steps reuse the hoisted conversion; only the
        // final partial step pays the divide. Identical value either
        // way.
        double step_sec = fast && step == cfg.maxStep
                              ? maxStepSeconds
                              : sim::secondsFromTicks(step);
        integrateStep(step_sec, sim::secondsFromTicks(t));
        t += step;
        lastUpdate = t;
        updateComparator();
    }
    integrating = false;
}

double
PowerSystem::voltage()
{
    advanceTo(now());
    return cap.voltage();
}

double
PowerSystem::regulatedVoltage()
{
    return std::min(voltage(), cfg.regulatorVolts);
}

} // namespace edb::energy
