/**
 * @file
 * Energy storage capacitor model.
 *
 * The target device buffers harvested charge in a small capacitor
 * (47 uF on the WISP 5). Stored energy is E = 1/2 C V^2; all of the
 * paper's energy percentages (Tables 3 and 4) are expressed relative
 * to the capacity at the 2.4 V turn-on voltage.
 */

#ifndef EDB_ENERGY_CAPACITOR_HH
#define EDB_ENERGY_CAPACITOR_HH

namespace edb::energy {

/** Ideal capacitor: charge in, voltage out. */
class Capacitor
{
  public:
    /**
     * @param farads Capacitance in farads.
     * @param initial_volts Initial voltage.
     */
    explicit Capacitor(double farads, double initial_volts = 0.0)
        : c(farads), v(initial_volts)
    {}

    /** Capacitance in farads. */
    double capacitance() const { return c; }

    /** Terminal voltage in volts. */
    double voltage() const { return v; }

    /** Force the terminal voltage (used by instruments and tests). */
    void setVoltage(double volts) { v = volts < 0.0 ? 0.0 : volts; }

    /** Inject charge in coulombs (negative to remove). */
    void
    addCharge(double coulombs)
    {
        v += coulombs / c;
        if (v < 0.0)
            v = 0.0;
    }

    /** Stored energy in joules at the present voltage. */
    double energy() const { return 0.5 * c * v * v; }

    /** Stored energy at an arbitrary voltage. */
    double energyAt(double volts) const { return 0.5 * c * volts * volts; }

  private:
    double c;
    double v;
};

} // namespace edb::energy

#endif // EDB_ENERGY_CAPACITOR_HH
