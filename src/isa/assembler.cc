#include "isa/assembler.hh"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/isa.hh"

namespace edb::isa {

namespace {

/** One source line split into label / op / operands. */
struct Line
{
    int number = 0;
    std::string label;
    std::string op;       // mnemonic or directive (lowercased)
    std::vector<std::string> operands;
};

[[noreturn]] void
err(int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "line " << line << ": " << msg;
    throw AsmError(oss.str());
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
lower(std::string s)
{
    for (auto &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Strip ';' / '#' comments, respecting quoted strings and chars. */
std::string
stripComment(const std::string &s)
{
    bool in_str = false;
    bool in_chr = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
        } else if (in_chr) {
            if (c == '\\')
                ++i;
            else if (c == '\'')
                in_chr = false;
        } else if (c == '"') {
            in_str = true;
        } else if (c == '\'') {
            in_chr = true;
        } else if (c == ';' || c == '#') {
            return s.substr(0, i);
        }
    }
    return s;
}

/** Split operands on top-level commas (quotes / brackets respected). */
std::vector<std::string>
splitOperands(const std::string &s, int line)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false;
    bool in_chr = false;
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (in_str) {
            cur += c;
            if (c == '\\' && i + 1 < s.size())
                cur += s[++i];
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (in_chr) {
            cur += c;
            if (c == '\\' && i + 1 < s.size())
                cur += s[++i];
            else if (c == '\'')
                in_chr = false;
            continue;
        }
        switch (c) {
          case '"': in_str = true; cur += c; break;
          case '\'': in_chr = true; cur += c; break;
          case '[': ++depth; cur += c; break;
          case ']': --depth; cur += c; break;
          case ',':
            if (depth == 0) {
                out.push_back(trim(cur));
                cur.clear();
            } else {
                cur += c;
            }
            break;
          default: cur += c; break;
        }
    }
    if (depth != 0)
        err(line, "unbalanced brackets");
    std::string last = trim(cur);
    if (!last.empty())
        out.push_back(last);
    return out;
}

/** Parse one source line. */
std::optional<Line>
parseLine(const std::string &raw, int number)
{
    std::string text = trim(stripComment(raw));
    if (text.empty())
        return std::nullopt;

    Line line;
    line.number = number;

    // Leading label(s): `name:`; only one per line is supported.
    std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        std::string maybe_label = trim(text.substr(0, colon));
        bool is_ident = !maybe_label.empty();
        for (char c : maybe_label) {
            if (!(std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '.'))
                is_ident = false;
        }
        // Don't treat `'c':` inside operands as a label: a label must
        // be the first token and contain no spaces or quotes.
        if (is_ident && maybe_label.find('\'') == std::string::npos &&
            maybe_label.find('"') == std::string::npos) {
            line.label = maybe_label;
            text = trim(text.substr(colon + 1));
        }
    }
    if (text.empty())
        return line;

    std::size_t sp = text.find_first_of(" \t");
    line.op = lower(text.substr(0, sp == std::string::npos
                                        ? text.size()
                                        : sp));
    if (sp != std::string::npos) {
        line.operands = splitOperands(trim(text.substr(sp + 1)), number);
    }
    return line;
}

using SymbolTable = std::map<std::string, std::uint32_t>;

/** Parse a register operand. */
std::uint8_t
parseReg(const std::string &tok, int line)
{
    std::string t = lower(trim(tok));
    if (t == "sp")
        return regSp;
    if (t.size() >= 2 && t[0] == 'r') {
        int n = 0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                err(line, "bad register '" + tok + "'");
            n = n * 10 + (t[i] - '0');
        }
        if (n >= 0 && n < static_cast<int>(numRegs))
            return static_cast<std::uint8_t>(n);
    }
    err(line, "bad register '" + tok + "'");
}

/** Parse a numeric / char / symbol primary term. */
std::int64_t
parsePrimary(const std::string &tok, const SymbolTable &syms, int line)
{
    std::string t = trim(tok);
    if (t.empty())
        err(line, "empty expression term");
    if (t.front() == '\'') {
        // Char literal: 'a', '\n', '\0', '\\', '\''.
        if (t.size() >= 3 && t.back() == '\'') {
            std::string body = t.substr(1, t.size() - 2);
            if (body.size() == 1)
                return static_cast<unsigned char>(body[0]);
            if (body.size() == 2 && body[0] == '\\') {
                switch (body[1]) {
                  case 'n': return '\n';
                  case 't': return '\t';
                  case 'r': return '\r';
                  case '0': return 0;
                  case '\\': return '\\';
                  case '\'': return '\'';
                  default: err(line, "bad escape in char literal");
                }
            }
        }
        err(line, "bad char literal " + t);
    }
    bool neg = false;
    std::string num = t;
    if (!num.empty() && (num[0] == '-' || num[0] == '+')) {
        neg = num[0] == '-';
        num = trim(num.substr(1));
    }
    if (!num.empty() && std::isdigit(static_cast<unsigned char>(num[0]))) {
        std::int64_t value = 0;
        try {
            value = std::stoll(num, nullptr, 0);
        } catch (const std::exception &) {
            err(line, "bad number '" + t + "'");
        }
        return neg ? -value : value;
    }
    auto it = syms.find(num);
    if (it == syms.end())
        err(line, "undefined symbol '" + num + "'");
    std::int64_t value = it->second;
    return neg ? -value : value;
}

/**
 * Evaluate `primary ((+|-) primary)*`. Splits on +/- that are not
 * the leading sign of a term.
 */
std::int64_t
parseExpr(const std::string &expr, const SymbolTable &syms, int line)
{
    std::string t = trim(expr);
    if (t.empty())
        err(line, "empty expression");
    std::vector<std::pair<char, std::string>> terms;
    std::string cur;
    char pending = '+';
    bool at_term_start = true;
    bool in_chr = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
        char c = t[i];
        if (in_chr) {
            cur += c;
            if (c == '\\' && i + 1 < t.size())
                cur += t[++i];
            else if (c == '\'')
                in_chr = false;
            continue;
        }
        if (c == '\'') {
            in_chr = true;
            cur += c;
            at_term_start = false;
            continue;
        }
        if ((c == '+' || c == '-') && !at_term_start) {
            terms.emplace_back(pending, cur);
            pending = c;
            cur.clear();
            at_term_start = true;
            continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            at_term_start = false;
        cur += c;
    }
    terms.emplace_back(pending, cur);

    std::int64_t total = 0;
    for (const auto &[sign, term] : terms) {
        std::int64_t v = parsePrimary(term, syms, line);
        total += sign == '-' ? -v : v;
    }
    return total;
}

/** Memory operand: [reg], [reg + expr], [reg - expr]. */
std::pair<std::uint8_t, std::int32_t>
parseMemOperand(const std::string &tok, const SymbolTable &syms, int line)
{
    std::string t = trim(tok);
    if (t.size() < 3 || t.front() != '[' || t.back() != ']')
        err(line, "expected memory operand [reg + off], got '" + tok +
                      "'");
    std::string body = trim(t.substr(1, t.size() - 2));
    // Find the end of the register token.
    std::size_t split = body.find_first_of("+-");
    std::string reg = trim(split == std::string::npos
                               ? body
                               : body.substr(0, split));
    std::int64_t off = 0;
    if (split != std::string::npos) {
        char sign = body[split];
        off = parseExpr(body.substr(split + 1), syms, line);
        if (sign == '-')
            off = -off;
    }
    if (off < -32768 || off > 32767)
        err(line, "memory offset out of range");
    return {parseReg(reg, line), static_cast<std::int32_t>(off)};
}

void
expectOperands(const Line &line, std::size_t n)
{
    if (line.operands.size() != n)
        err(line.number, "expected " + std::to_string(n) +
                             " operand(s) for '" + line.op + "', got " +
                             std::to_string(line.operands.size()));
}

std::int32_t
checkSigned16(std::int64_t v, int line, const char *what)
{
    if (v < -32768 || v > 32767)
        err(line, std::string(what) +
                      " out of signed 16-bit range: " +
                      std::to_string(v) + " (use `la` for addresses)");
    return static_cast<std::int32_t>(v);
}

std::int32_t
checkUnsigned16(std::int64_t v, int line, const char *what)
{
    if (v < 0 || v > 0xFFFF)
        err(line, std::string(what) +
                      " out of unsigned 16-bit range: " +
                      std::to_string(v));
    return static_cast<std::int32_t>(v);
}

/** Parse a string literal for .asciz. */
std::vector<std::uint8_t>
parseString(const std::string &tok, int line)
{
    std::string t = trim(tok);
    if (t.size() < 2 || t.front() != '"' || t.back() != '"')
        err(line, "expected string literal");
    std::vector<std::uint8_t> out;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
        char c = t[i];
        if (c == '\\' && i + 2 < t.size() + 1) {
            ++i;
            switch (t[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default: err(line, "bad escape in string");
            }
        }
        out.push_back(static_cast<std::uint8_t>(c));
    }
    return out;
}

/** Size in bytes a line contributes (pass 1). */
std::size_t
lineSize(const Line &line, const SymbolTable &syms, Addr lc)
{
    const std::string &op = line.op;
    if (op.empty())
        return 0;
    if (op == ".org" || op == ".entry" || op == ".irq" || op == ".equ")
        return 0;
    if (op == ".align")
        return (4 - (lc & 3u)) & 3u;
    if (op == ".word")
        return 4 * line.operands.size();
    if (op == ".byte")
        return line.operands.size();
    if (op == ".space") {
        expectOperands(line, 1);
        std::int64_t n = parseExpr(line.operands[0], syms, line.number);
        if (n < 0)
            err(line.number, ".space size must be >= 0");
        return static_cast<std::size_t>(n);
    }
    if (op == ".asciz")
        return parseString(line.operands.at(0), line.number).size() + 1;
    if (op == "la")
        return 8; // lui + ori
    if (op[0] == '.')
        err(line.number, "unknown directive '" + op + "'");
    if (!opcodeFromMnemonic(op))
        err(line.number, "unknown mnemonic '" + op + "'");
    return 4;
}

/** Encode one real instruction line (pass 2). */
std::vector<std::uint32_t>
encodeLine(const Line &line, const SymbolTable &syms, Addr addr)
{
    const int ln = line.number;
    if (line.op == "la") {
        expectOperands(line, 2);
        std::uint8_t rd = parseReg(line.operands[0], ln);
        std::int64_t v = parseExpr(line.operands[1], syms, ln);
        if (v < 0 || v > 0xFFFFFFFFll)
            err(ln, "la value out of 32-bit range");
        auto value = static_cast<std::uint32_t>(v);
        Instr hi{Opcode::Lui, rd, 0, 0,
                 static_cast<std::int32_t>(value >> 16)};
        Instr lo{Opcode::Ori, rd, rd, 0,
                 static_cast<std::int32_t>(value & 0xFFFFu)};
        return {encode(hi), encode(lo)};
    }

    Opcode op = *opcodeFromMnemonic(line.op);
    Instr i;
    i.op = op;
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
      case Opcode::Reti:
      case Opcode::Chkpt:
        expectOperands(line, 0);
        break;
      case Opcode::Li:
      case Opcode::Lui:
        expectOperands(line, 2);
        i.rd = parseReg(line.operands[0], ln);
        if (op == Opcode::Li) {
            i.imm = checkSigned16(
                parseExpr(line.operands[1], syms, ln), ln, "li value");
        } else {
            i.imm = checkUnsigned16(
                parseExpr(line.operands[1], syms, ln), ln, "lui value");
        }
        break;
      case Opcode::Mov:
        expectOperands(line, 2);
        i.rd = parseReg(line.operands[0], ln);
        i.rs = parseReg(line.operands[1], ln);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
        expectOperands(line, 3);
        i.rd = parseReg(line.operands[0], ln);
        i.rs = parseReg(line.operands[1], ln);
        i.rt = parseReg(line.operands[2], ln);
        break;
      case Opcode::Addi:
        expectOperands(line, 3);
        i.rd = parseReg(line.operands[0], ln);
        i.rs = parseReg(line.operands[1], ln);
        i.imm = checkSigned16(parseExpr(line.operands[2], syms, ln), ln,
                              "immediate");
        break;
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
        expectOperands(line, 3);
        i.rd = parseReg(line.operands[0], ln);
        i.rs = parseReg(line.operands[1], ln);
        i.imm = checkUnsigned16(parseExpr(line.operands[2], syms, ln),
                                ln, "immediate");
        break;
      case Opcode::Cmp:
        expectOperands(line, 2);
        i.rs = parseReg(line.operands[0], ln);
        i.rt = parseReg(line.operands[1], ln);
        break;
      case Opcode::Cmpi:
        expectOperands(line, 2);
        i.rs = parseReg(line.operands[0], ln);
        i.imm = checkSigned16(parseExpr(line.operands[1], syms, ln), ln,
                              "immediate");
        break;
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Call: {
        expectOperands(line, 1);
        std::int64_t target = parseExpr(line.operands[0], syms, ln);
        std::int64_t disp =
            target - (static_cast<std::int64_t>(addr) + 4);
        i.imm = checkSigned16(disp, ln, "branch displacement");
        break;
      }
      case Opcode::Ldw:
      case Opcode::Ldb:
      case Opcode::Stw:
      case Opcode::Stb: {
        expectOperands(line, 2);
        i.rd = parseReg(line.operands[0], ln);
        auto [rs, off] = parseMemOperand(line.operands[1], syms, ln);
        i.rs = rs;
        i.imm = off;
        break;
      }
      case Opcode::Push:
      case Opcode::Pop:
        expectOperands(line, 1);
        i.rd = parseReg(line.operands[0], ln);
        break;
      case Opcode::Callr:
        expectOperands(line, 1);
        i.rs = parseReg(line.operands[0], ln);
        break;
    }
    return {encode(i)};
}

void
emitWord(Program &prog, Addr &lc, std::uint32_t word)
{
    auto &bytes = prog.segments.back().bytes;
    for (int b = 0; b < 4; ++b)
        bytes.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    lc += 4;
}

} // namespace

Program
assemble(const std::string &source, Addr origin)
{
    std::vector<Line> lines;
    {
        std::istringstream iss(source);
        std::string raw;
        int number = 0;
        while (std::getline(iss, raw)) {
            ++number;
            if (auto line = parseLine(raw, number))
                lines.push_back(std::move(*line));
        }
    }

    // Pass 1: label addresses, .equ values, location counting.
    SymbolTable syms;
    {
        Addr lc = origin;
        for (const auto &line : lines) {
            if (!line.label.empty()) {
                if (syms.count(line.label))
                    err(line.number,
                        "duplicate symbol '" + line.label + "'");
                syms[line.label] = lc;
            }
            if (line.op == ".org") {
                expectOperands(line, 1);
                lc = static_cast<Addr>(
                    parseExpr(line.operands[0], syms, line.number));
                // A label on the same line binds to the new counter.
                if (!line.label.empty())
                    syms[line.label] = lc;
                continue;
            }
            if (line.op == ".equ") {
                expectOperands(line, 2);
                std::string name = trim(line.operands[0]);
                if (syms.count(name))
                    err(line.number,
                        "duplicate symbol '" + name + "'");
                syms[name] = static_cast<std::uint32_t>(
                    parseExpr(line.operands[1], syms, line.number));
                continue;
            }
            lc += static_cast<Addr>(lineSize(line, syms, lc));
        }
    }

    // Pass 2: emit.
    Program prog;
    prog.symbols = syms;
    prog.segments.push_back({origin, {}});
    std::string entry_symbol;
    std::string irq_symbol;
    Addr lc = origin;
    for (const auto &line : lines) {
        const int ln = line.number;
        if (line.op.empty())
            continue;
        if (line.op == ".org") {
            lc = static_cast<Addr>(parseExpr(line.operands[0], syms, ln));
            if (!prog.segments.back().bytes.empty())
                prog.segments.push_back({lc, {}});
            else
                prog.segments.back().base = lc;
            continue;
        }
        if (line.op == ".equ")
            continue;
        if (line.op == ".entry") {
            expectOperands(line, 1);
            entry_symbol = trim(line.operands[0]);
            continue;
        }
        if (line.op == ".irq") {
            expectOperands(line, 1);
            irq_symbol = trim(line.operands[0]);
            continue;
        }
        if (line.op == ".word") {
            for (const auto &operand : line.operands) {
                emitWord(prog, lc,
                         static_cast<std::uint32_t>(
                             parseExpr(operand, syms, ln)));
            }
            continue;
        }
        if (line.op == ".byte") {
            for (const auto &operand : line.operands) {
                std::int64_t v = parseExpr(operand, syms, ln);
                if (v < -128 || v > 255)
                    err(ln, ".byte value out of range");
                prog.segments.back().bytes.push_back(
                    static_cast<std::uint8_t>(v));
                ++lc;
            }
            continue;
        }
        if (line.op == ".align") {
            Addr pad = (4 - (lc & 3u)) & 3u;
            prog.segments.back().bytes.insert(
                prog.segments.back().bytes.end(), pad, std::uint8_t{0});
            lc += pad;
            continue;
        }
        if (line.op == ".space") {
            std::int64_t n = parseExpr(line.operands[0], syms, ln);
            prog.segments.back().bytes.insert(
                prog.segments.back().bytes.end(),
                static_cast<std::size_t>(n), std::uint8_t{0});
            lc += static_cast<Addr>(n);
            continue;
        }
        if (line.op == ".asciz") {
            expectOperands(line, 1);
            auto bytes = parseString(line.operands[0], ln);
            bytes.push_back(0);
            prog.segments.back().bytes.insert(
                prog.segments.back().bytes.end(), bytes.begin(),
                bytes.end());
            lc += static_cast<Addr>(bytes.size());
            continue;
        }
        for (std::uint32_t word : encodeLine(line, syms, lc))
            emitWord(prog, lc, word);
    }

    if (!entry_symbol.empty()) {
        auto it = syms.find(entry_symbol);
        if (it == syms.end())
            throw AsmError("undefined .entry symbol '" + entry_symbol +
                           "'");
        prog.entry = it->second;
    } else if (syms.count("main")) {
        prog.entry = syms["main"];
    } else {
        prog.entry = prog.segments.front().base;
    }
    if (!irq_symbol.empty()) {
        auto it = syms.find(irq_symbol);
        if (it == syms.end())
            throw AsmError("undefined .irq symbol '" + irq_symbol + "'");
        prog.irqHandler = it->second;
    }
    return prog;
}

} // namespace edb::isa
