/**
 * @file
 * Assembled program image.
 *
 * A `Program` is what the assembler produces and what gets "flashed"
 * into the target's FRAM: byte segments at absolute addresses, a
 * symbol table, and the entry point that the MCU's reset vector will
 * point at.
 */

#ifndef EDB_ISA_PROGRAM_HH
#define EDB_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edb::isa {

/** Target address type (mirrors mem::Addr without the dependency). */
using Addr = std::uint32_t;

/** An assembled program image. */
struct Program
{
    struct Segment
    {
        Addr base = 0;
        std::vector<std::uint8_t> bytes;
    };

    /** Byte segments in ascending address order. */
    std::vector<Segment> segments;

    /** Label / .equ symbol values. */
    std::map<std::string, std::uint32_t> symbols;

    /** Entry point (falls back to the first segment base). */
    Addr entry = 0;

    /** Address of the debug-interrupt handler (0 = none). */
    Addr irqHandler = 0;

    /** Value of a symbol; throws sim::FatalError when missing. */
    std::uint32_t symbol(const std::string &name) const;

    /** True when the symbol exists. */
    bool hasSymbol(const std::string &name) const;

    /** Total bytes across all segments. */
    std::size_t totalBytes() const;
};

} // namespace edb::isa

#endif // EDB_ISA_PROGRAM_HH
