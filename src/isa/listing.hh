/**
 * @file
 * Annotated program listings (objdump-style).
 *
 * Renders an assembled `Program` as address / raw word / mnemonic
 * columns with symbol labels interleaved — the firmware-inspection
 * view a developer expects from a toolchain, and what the examples
 * print when walking through the case-study binaries.
 */

#ifndef EDB_ISA_LISTING_HH
#define EDB_ISA_LISTING_HH

#include <ostream>
#include <string>

#include "isa/program.hh"

namespace edb::isa {

/** Listing options. */
struct ListingOptions
{
    /** Try to decode words as instructions (else raw data). */
    bool decodeInstructions = true;
    /** Include a symbol cross-reference header. */
    bool symbolTable = true;
    /** Annotate instructions that bound a superblock (branches and
     *  barriers — see isa::blockBoundary), showing where the MCU's
     *  block compiler must cut its straight-line traces. */
    bool markBlockBoundaries = false;
    /** Limit emitted lines (0 = no limit). */
    std::size_t maxLines = 0;
};

/**
 * Write an annotated listing of `program` to `os`.
 * @return number of lines emitted.
 */
std::size_t writeListing(std::ostream &os, const Program &program,
                         const ListingOptions &options = {});

/** Render one address's word as a listing line (no label). */
std::string listingLine(Addr addr, std::uint32_t word,
                        bool decode_instruction = true);

} // namespace edb::isa

#endif // EDB_ISA_LISTING_HH
