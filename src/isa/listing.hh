/**
 * @file
 * Annotated program listings (objdump-style).
 *
 * Renders an assembled `Program` as address / raw word / mnemonic
 * columns with symbol labels interleaved — the firmware-inspection
 * view a developer expects from a toolchain, and what the examples
 * print when walking through the case-study binaries.
 */

#ifndef EDB_ISA_LISTING_HH
#define EDB_ISA_LISTING_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>

#include "isa/program.hh"

namespace edb::isa {

/** Listing options. */
struct ListingOptions
{
    /** Try to decode words as instructions (else raw data). */
    bool decodeInstructions = true;
    /** Include a symbol cross-reference header. */
    bool symbolTable = true;
    /** Annotate instructions that bound a superblock (branches and
     *  barriers — see isa::blockBoundary), showing where the MCU's
     *  block compiler must cut its straight-line traces. */
    bool markBlockBoundaries = false;
    /** Limit emitted lines (0 = no limit). */
    std::size_t maxLines = 0;
};

/**
 * Write an annotated listing of `program` to `os`.
 * @return number of lines emitted.
 */
std::size_t writeListing(std::ostream &os, const Program &program,
                         const ListingOptions &options = {});

/** Render one address's word as a listing line (no label). */
std::string listingLine(Addr addr, std::uint32_t word,
                        bool decode_instruction = true);

/**
 * Debugger-facing symbol table emitted from an assembled program:
 * labels/.equ constants by name, addresses back to labels, and —
 * the "line info" a source-level frontend needs — the 1-based line
 * each instruction address occupies in the default `writeListing`
 * rendering, so a debug server can answer "what line is PC on?"
 * without shipping the listing text itself.
 */
class SymbolTable
{
  public:
    /** Build from an assembled image (labels, .equ, line numbers). */
    static SymbolTable fromProgram(const Program &program);

    /** Value of `name` (label or .equ); nullopt when unknown. */
    std::optional<std::uint32_t>
    lookup(const std::string &name) const;

    /** Symbolize an address as "label" / "label+0xNN" ("" when no
     *  label at or below `addr` exists). */
    std::string symbolize(std::uint32_t addr) const;

    /** 1-based default-listing line of an instruction address
     *  (0 when the address is not in any segment). */
    std::size_t lineOf(Addr addr) const;

    /** All symbols, name-ordered (frontend symbol browsing). */
    const std::map<std::string, std::uint32_t> &
    symbols() const
    {
        return byName;
    }

    std::size_t size() const { return byName.size(); }

  private:
    std::map<std::string, std::uint32_t> byName;
    std::map<std::uint32_t, std::string> byValue;
    std::map<Addr, std::size_t> lines;
};

} // namespace edb::isa

#endif // EDB_ISA_LISTING_HH
