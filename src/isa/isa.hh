/**
 * @file
 * The EH32 instruction set.
 *
 * EH32 is the small load/store ISA executed by the simulated target
 * MCU. It stands in for the MSP430 of the paper's WISP 5: what
 * matters for reproducing intermittence behaviour is not the ISA
 * flavour but that programs are sequences of discrete instructions,
 * each with a cycle cost, each of which a power failure can separate
 * from the next.
 *
 * Encoding: fixed 32-bit little-endian words.
 *
 *     [31:24] opcode
 *     [23:20] rd
 *     [19:16] rs
 *     [15:0]  imm16 (signed unless noted); R-type ops use imm[3:0]
 *             as rt
 *
 * Registers: r0..r15, all general purpose; r15 doubles as the stack
 * pointer (alias `sp`), r14 is the conventional link/temp register.
 * Flags (Z, N, C, V) are set by CMP/CMPI only; branches test flags.
 */

#ifndef EDB_ISA_ISA_HH
#define EDB_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace edb::isa {

/** Number of general-purpose registers. */
constexpr unsigned numRegs = 16;

/** Stack pointer register index (alias `sp`). */
constexpr unsigned regSp = 15;

/** EH32 opcodes. */
enum class Opcode : std::uint8_t
{
    Nop = 0x00,   ///< No operation.
    Halt = 0x01,  ///< Stop the core until reboot.

    Li = 0x02,    ///< rd = sext(imm16)
    Lui = 0x03,   ///< rd = imm16 << 16
    Mov = 0x04,   ///< rd = rs

    Add = 0x10,   ///< rd = rs + rt
    Sub = 0x11,   ///< rd = rs - rt
    Mul = 0x12,   ///< rd = rs * rt (low 32 bits)
    Divu = 0x13,  ///< rd = rs / rt (unsigned; rt==0 -> 0xFFFFFFFF)
    Remu = 0x14,  ///< rd = rs % rt (unsigned; rt==0 -> rs)
    And = 0x15,   ///< rd = rs & rt
    Or = 0x16,    ///< rd = rs | rt
    Xor = 0x17,   ///< rd = rs ^ rt
    Shl = 0x18,   ///< rd = rs << (rt & 31)
    Shr = 0x19,   ///< rd = rs >> (rt & 31), logical
    Sar = 0x1A,   ///< rd = rs >> (rt & 31), arithmetic

    Addi = 0x20,  ///< rd = rs + sext(imm16)
    Andi = 0x21,  ///< rd = rs & zext(imm16)
    Ori = 0x22,   ///< rd = rs | zext(imm16)
    Xori = 0x23,  ///< rd = rs ^ zext(imm16)
    Shli = 0x24,  ///< rd = rs << (imm16 & 31)
    Shri = 0x25,  ///< rd = rs >> (imm16 & 31), logical

    Cmp = 0x30,   ///< flags = rs - rt
    Cmpi = 0x31,  ///< flags = rs - sext(imm16)

    Br = 0x40,    ///< pc += sext(imm16) (relative to next instr)
    Beq = 0x41,   ///< branch if Z
    Bne = 0x42,   ///< branch if !Z
    Blt = 0x43,   ///< branch if N != V (signed <)
    Bge = 0x44,   ///< branch if N == V (signed >=)
    Bltu = 0x45,  ///< branch if !C (unsigned <)
    Bgeu = 0x46,  ///< branch if C (unsigned >=)

    Ldw = 0x50,   ///< rd = mem32[rs + sext(imm16)]
    Ldb = 0x51,   ///< rd = zext(mem8[rs + sext(imm16)])
    Stw = 0x52,   ///< mem32[rs + sext(imm16)] = rd
    Stb = 0x53,   ///< mem8[rs + sext(imm16)] = rd & 0xFF

    Push = 0x60,  ///< sp -= 4; mem32[sp] = rd
    Pop = 0x61,   ///< rd = mem32[sp]; sp += 4
    Call = 0x62,  ///< push return addr; pc += sext(imm16)
    Callr = 0x63, ///< push return addr; pc = rs
    Ret = 0x64,   ///< pc = pop()
    Reti = 0x65,  ///< pop pc then flags (return from debug IRQ)

    Chkpt = 0x70, ///< request a hardware checkpoint (see CheckpointUnit)
};

/** Condition flags produced by CMP/CMPI. */
struct Flags
{
    bool z = false; ///< Zero.
    bool n = false; ///< Negative.
    bool c = false; ///< Carry (no borrow) — unsigned >=.
    bool v = false; ///< Signed overflow.

    /** Pack into a word for stacking on interrupt entry. */
    std::uint32_t
    pack() const
    {
        return (z ? 1u : 0u) | (n ? 2u : 0u) | (c ? 4u : 0u) |
               (v ? 8u : 0u);
    }

    /** Unpack from a stacked word. */
    static Flags
    unpack(std::uint32_t w)
    {
        Flags f;
        f.z = w & 1u;
        f.n = w & 2u;
        f.c = w & 4u;
        f.v = w & 8u;
        return f;
    }
};

/** Decoded instruction. */
struct Instr
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int32_t imm = 0; ///< Sign-extended imm16.

    bool operator==(const Instr &) const = default;
};

/** Encode an instruction into its 32-bit word. */
std::uint32_t encode(const Instr &instr);

/** Decode a 32-bit word; nullopt for an unknown opcode. */
std::optional<Instr> decode(std::uint32_t word);

/** Mnemonic for an opcode ("add", "ldw", ...). */
const char *mnemonic(Opcode op);

/** Parse a mnemonic; nullopt when unknown. */
std::optional<Opcode> opcodeFromMnemonic(const std::string &name);

/** Human-readable disassembly of one instruction. */
std::string disassemble(const Instr &instr);

/** True for opcodes whose imm16 is a branch displacement. */
bool isBranch(Opcode op);

/**
 * How an opcode bounds a straight-line superblock (see DESIGN.md
 * §10). `Branch` ops end a block but belong to it (their target is
 * resolvable from the block PC and the flags); `Barrier` ops — HALT,
 * CHKPT, calls and returns — are never compiled into a block, because
 * their cost or control flow depends on live machine state the block
 * builder cannot see.
 */
enum class BlockBoundary : std::uint8_t
{
    None,    ///< Straight-line body instruction.
    Branch,  ///< Conditional/unconditional branch: block terminator.
    Barrier, ///< Excluded from blocks entirely.
};

/** Classify `op` for the superblock builder / listing annotator. */
BlockBoundary blockBoundary(Opcode op);

/**
 * Base cycle cost of an opcode at the core clock (memory and
 * peripheral accesses add extra cycles; see McuConfig).
 */
unsigned baseCycles(Opcode op);

} // namespace edb::isa

#endif // EDB_ISA_ISA_HH
