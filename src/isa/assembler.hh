/**
 * @file
 * Two-pass assembler for EH32.
 *
 * The guest applications (paper Section 5.3's case studies) and the
 * target-side libEDB runtime are written in this assembly dialect.
 *
 * Syntax:
 *
 *     ; comment (also '#')
 *     .org   0x4000          ; set location counter
 *     .entry main            ; program entry point
 *     .irq   dbg_isr         ; debug-interrupt handler
 *     .equ   NAME, expr      ; define a constant
 *     .word  expr [, expr]*  ; emit 32-bit words
 *     .byte  expr [, expr]*  ; emit bytes
 *     .space N               ; emit N zero bytes
 *     .asciz "text"          ; NUL-terminated string
 *     label:
 *         li    r1, 42
 *         la    r2, buffer   ; pseudo: lui+ori, always 8 bytes
 *         ldw   r3, [r2 + 4]
 *         stw   r3, [r2]
 *         cmp   r1, r3
 *         beq   done
 *         call  fn
 *
 * Expressions: decimal / 0x hex / 'c' char literals, symbols, and
 * single +/- combinations (`sym + 4`). Registers are r0..r15 with
 * the alias `sp` for r15.
 */

#ifndef EDB_ISA_ASSEMBLER_HH
#define EDB_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace edb::isa {

/** Error thrown on malformed assembly; message includes line number. */
class AsmError : public std::runtime_error
{
  public:
    explicit AsmError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Assemble EH32 source text into a program image.
 *
 * @param source Assembly text.
 * @param origin Default location counter before any `.org`.
 * @return Assembled program.
 * @throws AsmError on any syntax or range error.
 */
Program assemble(const std::string &source, Addr origin = 0x4000);

} // namespace edb::isa

#endif // EDB_ISA_ASSEMBLER_HH
