#include "isa/program.hh"

#include "sim/logging.hh"

namespace edb::isa {

std::uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        sim::fatal("Program: unknown symbol '", name, "'");
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

std::size_t
Program::totalBytes() const
{
    std::size_t total = 0;
    for (const auto &seg : segments)
        total += seg.bytes.size();
    return total;
}

} // namespace edb::isa
