#include "isa/listing.hh"

#include <iomanip>
#include <map>
#include <sstream>

#include "isa/isa.hh"

namespace edb::isa {

std::string
listingLine(Addr addr, std::uint32_t word, bool decode_instruction)
{
    std::ostringstream oss;
    oss << "  0x" << std::hex << std::setw(4) << std::setfill('0')
        << addr << ":  " << std::setw(8) << word << "  " << std::dec
        << std::setfill(' ');
    if (decode_instruction) {
        if (auto instr = decode(word)) {
            oss << disassemble(*instr);
            return oss.str();
        }
    }
    // Raw data: show printable ASCII when plausible.
    oss << ".word";
    std::string ascii;
    bool printable = true;
    for (int b = 0; b < 4; ++b) {
        char c = static_cast<char>(word >> (8 * b));
        if (c >= 0x20 && c < 0x7F)
            ascii.push_back(c);
        else if (c == 0)
            ascii.push_back('.');
        else
            printable = false;
    }
    if (printable)
        oss << "      ; \"" << ascii << '"';
    return oss.str();
}

std::size_t
writeListing(std::ostream &os, const Program &program,
             const ListingOptions &options)
{
    std::size_t lines = 0;
    auto emit = [&os, &lines, &options](const std::string &line) {
        if (options.maxLines && lines >= options.maxLines)
            return false;
        os << line << '\n';
        ++lines;
        return true;
    };

    // Invert the symbol table: address -> names.
    std::multimap<std::uint32_t, std::string> by_addr;
    for (const auto &[name, value] : program.symbols)
        by_addr.emplace(value, name);

    if (options.symbolTable) {
        std::ostringstream hdr;
        hdr << "; entry 0x" << std::hex << program.entry;
        if (program.irqHandler)
            hdr << ", irq 0x" << program.irqHandler;
        hdr << std::dec << ", " << program.totalBytes() << " bytes in "
            << program.segments.size() << " segment(s)";
        if (!emit(hdr.str()))
            return lines;
    }

    for (const auto &seg : program.segments) {
        {
            std::ostringstream shdr;
            shdr << "; segment @ 0x" << std::hex << seg.base
                 << std::dec << " (" << seg.bytes.size() << " bytes)";
            if (!emit(shdr.str()))
                return lines;
        }
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            Addr addr = seg.base + static_cast<Addr>(i);
            auto range = by_addr.equal_range(addr);
            for (auto it = range.first; it != range.second; ++it) {
                if (!emit(it->second + ":"))
                    return lines;
            }
            std::uint32_t word = 0;
            for (int b = 0; b < 4; ++b) {
                word |= std::uint32_t(seg.bytes[i + b]) << (8 * b);
            }
            std::string line =
                listingLine(addr, word, options.decodeInstructions);
            if (options.markBlockBoundaries &&
                options.decodeInstructions) {
                if (auto instr = decode(word)) {
                    switch (blockBoundary(instr->op)) {
                      case BlockBoundary::Branch:
                        line += "  ; <= block end";
                        break;
                      case BlockBoundary::Barrier:
                        line += "  ; <= block barrier";
                        break;
                      case BlockBoundary::None:
                        break;
                    }
                }
            }
            if (!emit(line))
                return lines;
        }
    }
    return lines;
}

SymbolTable
SymbolTable::fromProgram(const Program &program)
{
    SymbolTable t;
    for (const auto &[name, value] : program.symbols) {
        t.byName.emplace(name, value);
        // Ties (aliases for one address) keep the first name in
        // name order, deterministically.
        t.byValue.emplace(value, name);
    }
    // Line numbers mirror the default writeListing traversal: one
    // header line, then per segment a segment-header line, label
    // lines, and one line per word.
    std::multimap<std::uint32_t, std::string> by_addr;
    for (const auto &[name, value] : program.symbols)
        by_addr.emplace(value, name);
    std::size_t line = 1; // the "; entry ..." header
    for (const auto &seg : program.segments) {
        ++line; // "; segment @ ..." header
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            Addr addr = seg.base + static_cast<Addr>(i);
            auto range = by_addr.equal_range(addr);
            for (auto it = range.first; it != range.second; ++it)
                ++line; // "label:" line
            t.lines.emplace(addr, ++line);
        }
    }
    return t;
}

std::optional<std::uint32_t>
SymbolTable::lookup(const std::string &name) const
{
    auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

std::string
SymbolTable::symbolize(std::uint32_t addr) const
{
    auto it = byValue.upper_bound(addr);
    if (it == byValue.begin())
        return "";
    --it;
    if (it->first == addr)
        return it->second;
    std::ostringstream oss;
    oss << it->second << "+0x" << std::hex << (addr - it->first);
    return oss.str();
}

std::size_t
SymbolTable::lineOf(Addr addr) const
{
    auto it = lines.find(addr);
    return it == lines.end() ? 0 : it->second;
}

} // namespace edb::isa
