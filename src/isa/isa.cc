#include "isa/isa.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>
#include <utility>

namespace edb::isa {

namespace {

struct OpInfo
{
    Opcode op;
    const char *name;
    unsigned cycles;
};

constexpr std::array opTable = {
    OpInfo{Opcode::Nop, "nop", 1},
    OpInfo{Opcode::Halt, "halt", 1},
    OpInfo{Opcode::Li, "li", 1},
    OpInfo{Opcode::Lui, "lui", 1},
    OpInfo{Opcode::Mov, "mov", 1},
    OpInfo{Opcode::Add, "add", 1},
    OpInfo{Opcode::Sub, "sub", 1},
    OpInfo{Opcode::Mul, "mul", 3},
    OpInfo{Opcode::Divu, "divu", 10},
    OpInfo{Opcode::Remu, "remu", 10},
    OpInfo{Opcode::And, "and", 1},
    OpInfo{Opcode::Or, "or", 1},
    OpInfo{Opcode::Xor, "xor", 1},
    OpInfo{Opcode::Shl, "shl", 1},
    OpInfo{Opcode::Shr, "shr", 1},
    OpInfo{Opcode::Sar, "sar", 1},
    OpInfo{Opcode::Addi, "addi", 1},
    OpInfo{Opcode::Andi, "andi", 1},
    OpInfo{Opcode::Ori, "ori", 1},
    OpInfo{Opcode::Xori, "xori", 1},
    OpInfo{Opcode::Shli, "shli", 1},
    OpInfo{Opcode::Shri, "shri", 1},
    OpInfo{Opcode::Cmp, "cmp", 1},
    OpInfo{Opcode::Cmpi, "cmpi", 1},
    OpInfo{Opcode::Br, "br", 2},
    OpInfo{Opcode::Beq, "beq", 2},
    OpInfo{Opcode::Bne, "bne", 2},
    OpInfo{Opcode::Blt, "blt", 2},
    OpInfo{Opcode::Bge, "bge", 2},
    OpInfo{Opcode::Bltu, "bltu", 2},
    OpInfo{Opcode::Bgeu, "bgeu", 2},
    OpInfo{Opcode::Ldw, "ldw", 2},
    OpInfo{Opcode::Ldb, "ldb", 2},
    OpInfo{Opcode::Stw, "stw", 2},
    OpInfo{Opcode::Stb, "stb", 2},
    OpInfo{Opcode::Push, "push", 2},
    OpInfo{Opcode::Pop, "pop", 2},
    OpInfo{Opcode::Call, "call", 3},
    OpInfo{Opcode::Callr, "callr", 3},
    OpInfo{Opcode::Ret, "ret", 3},
    OpInfo{Opcode::Reti, "reti", 4},
    OpInfo{Opcode::Chkpt, "chkpt", 2},
};

const OpInfo *
lookup(Opcode op)
{
    for (const auto &info : opTable) {
        if (info.op == op)
            return &info;
    }
    return nullptr;
}

} // namespace

std::uint32_t
encode(const Instr &instr)
{
    std::uint32_t word = 0;
    word |= static_cast<std::uint32_t>(instr.op) << 24;
    word |= static_cast<std::uint32_t>(instr.rd & 0xF) << 20;
    word |= static_cast<std::uint32_t>(instr.rs & 0xF) << 16;
    std::uint32_t imm16 =
        static_cast<std::uint32_t>(instr.imm) & 0xFFFFu;
    // R-type ops carry rt in imm[3:0]; they have no immediate.
    switch (instr.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Cmp:
        imm16 = instr.rt & 0xFu;
        break;
      default:
        break;
    }
    word |= imm16;
    return word;
}

std::optional<Instr>
decode(std::uint32_t word)
{
    auto op = static_cast<Opcode>((word >> 24) & 0xFF);
    if (!lookup(op))
        return std::nullopt;
    Instr instr;
    instr.op = op;
    instr.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
    instr.rs = static_cast<std::uint8_t>((word >> 16) & 0xF);
    std::uint32_t imm16 = word & 0xFFFFu;
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Cmp:
        instr.rt = static_cast<std::uint8_t>(imm16 & 0xF);
        instr.imm = 0;
        break;
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
        // Zero-extended immediates.
        instr.imm = static_cast<std::int32_t>(imm16);
        break;
      default:
        // Sign-extended immediates.
        instr.imm = static_cast<std::int32_t>(
            static_cast<std::int16_t>(imm16));
        break;
    }
    return instr;
}

const char *
mnemonic(Opcode op)
{
    const OpInfo *info = lookup(op);
    return info ? info->name : "???";
}

std::optional<Opcode>
opcodeFromMnemonic(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (const auto &info : opTable) {
        if (lower == info.name)
            return info.op;
    }
    return std::nullopt;
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Call:
        return true;
      default:
        return false;
    }
}

BlockBoundary
blockBoundary(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return BlockBoundary::Branch;
      case Opcode::Halt:
      case Opcode::Call:
      case Opcode::Callr:
      case Opcode::Ret:
      case Opcode::Reti:
      case Opcode::Chkpt:
        return BlockBoundary::Barrier;
      default:
        return BlockBoundary::None;
    }
}

unsigned
baseCycles(Opcode op)
{
    const OpInfo *info = lookup(op);
    return info ? info->cycles : 1;
}

std::string
disassemble(const Instr &i)
{
    std::ostringstream oss;
    oss << mnemonic(i.op);
    auto r = [](unsigned n) { return "r" + std::to_string(n); };
    switch (i.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
      case Opcode::Reti:
      case Opcode::Chkpt:
        break;
      case Opcode::Li:
      case Opcode::Lui:
        oss << ' ' << r(i.rd) << ", " << i.imm;
        break;
      case Opcode::Mov:
        oss << ' ' << r(i.rd) << ", " << r(i.rs);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
        oss << ' ' << r(i.rd) << ", " << r(i.rs) << ", " << r(i.rt);
        break;
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
        oss << ' ' << r(i.rd) << ", " << r(i.rs) << ", " << i.imm;
        break;
      case Opcode::Cmp:
        oss << ' ' << r(i.rs) << ", " << r(i.rt);
        break;
      case Opcode::Cmpi:
        oss << ' ' << r(i.rs) << ", " << i.imm;
        break;
      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Call:
        oss << ' ' << i.imm;
        break;
      case Opcode::Ldw:
      case Opcode::Ldb:
      case Opcode::Stw:
      case Opcode::Stb:
        oss << ' ' << r(i.rd) << ", [" << r(i.rs) << " + " << i.imm
            << ']';
        break;
      case Opcode::Push:
      case Opcode::Pop:
        oss << ' ' << r(i.rd);
        break;
      case Opcode::Callr:
        oss << ' ' << r(i.rs);
        break;
    }
    return oss.str();
}

} // namespace edb::isa
