#include "sensors/accelerometer.hh"

#include <algorithm>

#include "sim/snapshot.hh"

namespace edb::sensors {

Accelerometer::Accelerometer(sim::Simulator &simulator,
                             std::string component_name,
                             AccelConfig config)
    : sim::Component(simulator, std::move(component_name)), cfg(config)
{}

void
Accelerometer::maybeAdvanceState()
{
    sim::Tick t = now();
    while (t >= stateUntil) {
        isMoving = !isMoving;
        // Exponentially distributed dwell times around the mean.
        double u = std::max(1e-9, sim().rng().uniform());
        auto dwell = static_cast<sim::Tick>(
            -static_cast<double>(cfg.meanDwell) * std::log(u));
        stateUntil += std::max<sim::Tick>(dwell, sim::oneMs);
    }
}

bool
Accelerometer::moving()
{
    maybeAdvanceState();
    return isMoving;
}

void
Accelerometer::latchSample()
{
    maybeAdvanceState();
    auto &rng = sim().rng();
    double sigma = isMoving ? cfg.movingSigma : cfg.stillSigma;
    auto clamp16 = [](double v) {
        return static_cast<std::int16_t>(
            std::clamp(v, -32768.0, 32767.0));
    };
    x = clamp16(rng.gaussian(sigma));
    y = clamp16(rng.gaussian(sigma));
    z = clamp16(cfg.gravityCounts + rng.gaussian(sigma));
    ++samples;
    if (isMoving)
        ++movingLatched;
}

std::uint8_t
Accelerometer::readReg(std::uint8_t reg)
{
    using namespace accel_reg;
    switch (reg) {
      case whoAmI:
        return 0x2A;
      case xHi:
        latchSample(); // Reading X-high latches a fresh triple.
        return static_cast<std::uint8_t>(x >> 8);
      case xLo:
        return static_cast<std::uint8_t>(x & 0xFF);
      case yHi:
        return static_cast<std::uint8_t>(y >> 8);
      case yLo:
        return static_cast<std::uint8_t>(y & 0xFF);
      case zHi:
        return static_cast<std::uint8_t>(z >> 8);
      case zLo:
        return static_cast<std::uint8_t>(z & 0xFF);
      case ctrl:
        return ctrlReg;
      default:
        return 0xFF;
    }
}

void
Accelerometer::writeReg(std::uint8_t reg, std::uint8_t value)
{
    if (reg == accel_reg::ctrl)
        ctrlReg = value;
}

void
Accelerometer::saveState(sim::SnapshotWriter &w) const
{
    w.section("accel");
    w.boolean(isMoving);
    w.tick(stateUntil);
    w.u32(static_cast<std::uint16_t>(x));
    w.u32(static_cast<std::uint16_t>(y));
    w.u32(static_cast<std::uint16_t>(z));
    w.u8(ctrlReg);
    w.u64(samples);
    w.u64(movingLatched);
}

void
Accelerometer::restoreState(sim::SnapshotReader &r)
{
    r.section("accel");
    isMoving = r.boolean();
    stateUntil = r.tick();
    x = static_cast<std::int16_t>(static_cast<std::uint16_t>(r.u32()));
    y = static_cast<std::int16_t>(static_cast<std::uint16_t>(r.u32()));
    z = static_cast<std::int16_t>(static_cast<std::uint16_t>(r.u32()));
    ctrlReg = r.u8();
    samples = r.u64();
    movingLatched = r.u64();
}

} // namespace edb::sensors
