/**
 * @file
 * Synthetic 3-axis accelerometer on the I2C bus.
 *
 * Stand-in for the accelerometer of the paper's activity-recognition
 * case study (Section 5.3.3). Generates an alternating
 * stationary/moving motion profile with ground-truth accessors so
 * the classifier's output can be verified against what the sensor
 * actually produced.
 */

#ifndef EDB_SENSORS_ACCELEROMETER_HH
#define EDB_SENSORS_ACCELEROMETER_HH

#include <cstdint>
#include <string>

#include "mcu/i2c.hh"
#include "sim/simulator.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
} // namespace edb::sim

namespace edb::sensors {

/** Accelerometer register map. */
namespace accel_reg {
constexpr std::uint8_t whoAmI = 0x00;  ///< Identity: 0x2A.
constexpr std::uint8_t xHi = 0x01;     ///< Latches a fresh sample.
constexpr std::uint8_t xLo = 0x02;
constexpr std::uint8_t yHi = 0x03;
constexpr std::uint8_t yLo = 0x04;
constexpr std::uint8_t zHi = 0x05;
constexpr std::uint8_t zLo = 0x06;
constexpr std::uint8_t ctrl = 0x07;    ///< Writable control register.
} // namespace accel_reg

/** Motion-profile configuration. */
struct AccelConfig
{
    std::uint8_t busAddress = 0x1D;
    /** Mean dwell in each motion state. */
    sim::Tick meanDwell = 400 * sim::oneMs;
    /** 1 g in raw counts. */
    int gravityCounts = 1024;
    /** Noise sigma while stationary (counts). */
    double stillSigma = 12.0;
    /** Noise sigma while moving (counts). */
    double movingSigma = 220.0;
};

/** Synthetic accelerometer (I2C slave). */
class Accelerometer : public sim::Component, public mcu::I2cDevice
{
  public:
    Accelerometer(sim::Simulator &simulator, std::string component_name,
                  AccelConfig config = {});

    /// @name I2cDevice interface
    /// @{
    std::uint8_t address() const override { return cfg.busAddress; }
    std::uint8_t readReg(std::uint8_t reg) override;
    void writeReg(std::uint8_t reg, std::uint8_t value) override;
    /// @}

    /** Ground truth: is the synthetic subject moving right now? */
    bool moving();

    /** Samples latched so far. */
    std::uint64_t sampleCount() const { return samples; }

    /** Ground-truth count of samples latched while moving. */
    std::uint64_t movingSamples() const { return movingLatched; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// The motion profile draws the shared simulator RNG, which the
    /// snapshot restores separately; only the latched state lives
    /// here.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
    /// @}

  private:
    void maybeAdvanceState();
    void latchSample();

    AccelConfig cfg;
    bool isMoving = false;
    sim::Tick stateUntil = 0;
    std::int16_t x = 0;
    std::int16_t y = 0;
    std::int16_t z = 0;
    std::uint8_t ctrlReg = 0;
    std::uint64_t samples = 0;
    std::uint64_t movingLatched = 0;
};

} // namespace edb::sensors

#endif // EDB_SENSORS_ACCELEROMETER_HH
