#include "fleet/world.hh"

#include "isa/isa.hh"

namespace edb::fleet {

namespace {

/** ScheduleLog opcode: force the capacitor to `arg` volts. */
constexpr std::uint32_t opBrownOut = 1;

/** Fleet worlds always boot on start when pre-charged: a tag given
 *  initial volts above turn-on must execute from tick zero. */
target::WispConfig
bootableWisp(target::WispConfig config)
{
    config.power.bootOnStart = true;
    return config;
}

mem::NvAuditConfig
auditConfigFor(const target::Wisp &wisp)
{
    mem::NvAuditConfig cfg;
    cfg.nvBase = target::layout::framBase;
    cfg.nvSize = target::layout::framSize;
    cfg.checkpointBase = wisp.config().mcu.checkpointBase;
    cfg.checkpointSpan = 2 * wisp.config().mcu.checkpointSlotSize;
    return cfg;
}

} // namespace

World::World(const isa::Program &program, const WorldConfig &config)
    : cfg(config), sim(config.seed),
      harvester(config.txPowerDbm, config.distanceM),
      wisp_(std::make_unique<target::Wisp>(sim, "wisp", &harvester,
                                           nullptr,
                                           bootableWisp(config.wisp))),
      player(sim)
{
    wisp_->flash(program);
    if (cfg.withAuditor) {
        aud = std::make_unique<mem::NvAuditor>(auditConfigFor(*wisp_),
                                               wisp_->framRegion());
        wisp_->mcu().setAuditor(aud.get());
        wisp_->memoryMap().setWriteHook(&mem::NvAuditor::rawWriteHook,
                                        aud.get());
    }
    if (cfg.withEdb)
        edb_ = std::make_unique<edbdbg::EdbBoard>(sim, "edb", *wisp_,
                                                  nullptr);
    for (const fuzz::BrownOut &b : cfg.schedule)
        schedule.record(b.at, opBrownOut, b.volts);
    installHooks();
}

void
World::installHooks()
{
    if (cfg.warDoneWatch != 0) {
        // The completeness probe: an open WAR record exposed by a
        // power loss is exactly what the auditor must flag. The
        // tracer forces per-instruction stepping for this world
        // only; throughput worlds never install one.
        wisp_->mcu().setTracer(
            [this](mem::Addr pc, const isa::Instr &) {
                if (pc == cfg.warDoneWatch)
                    gadgetLive = true;
            });
    }
    wisp_->power().addPowerListener([this](bool on) {
        if (!on) {
            if (gadgetLive)
                ++lossAfterGadget;
            gadgetLive = false;
        }
    });
}

void
World::start()
{
    wisp_->start();
    if (!schedule.entries().empty())
        player.arm(schedule, 0, [this](const sim::ScheduleEntry &e) {
            if (e.op == opBrownOut)
                wisp_->power().capacitor().setVoltage(e.arg);
        });
}

void
World::planEpoch(sim::Tick epoch_start, sim::Tick epoch_end,
                 double carrier_fraction)
{
    epochStart = epoch_start;
    instrsAtEpochStart = instrCount();
    double frac = carrier_fraction;
    if (backoff) {
        frac *= 1.0 - cfg.collisionBackoff;
        backoff = false;
    }
    if (frac <= 0.0) {
        harvester.setCarrierOn(false);
        return;
    }
    harvester.setCarrierOn(true);
    if (frac < 1.0) {
        sim::Tick span = epoch_end - epoch_start;
        sim::Tick off =
            epoch_start +
            static_cast<sim::Tick>(static_cast<double>(span) * frac);
        if (off < epoch_end)
            sim.schedule(off,
                         [this] { harvester.setCarrierOn(false); });
    }
}

void
World::advanceTo(sim::Tick epoch_end)
{
    sim.runUntil(epoch_end);
}

bool
World::attemptedUplink() const
{
    return instrCount() > instrsAtEpochStart;
}

std::uint64_t
World::instrCount() const
{
    return wisp_->mcu().instrCount();
}

std::uint64_t
World::instrsThisEpoch() const
{
    return instrCount() - instrsAtEpochStart;
}

void
World::noteOutcome(rfid::SlotOutcome outcome)
{
    ++attempts;
    if (outcome == rfid::SlotOutcome::Won) {
        ++replies;
    } else {
        ++collided;
        backoff = true;
    }
}

void
World::saveTo(sim::SnapshotWriter &w) const
{
    wisp_->saveState(w);
    if (aud)
        aud->saveState(w);
    if (edb_)
        edb_->saveState(w);
    w.section("fleetworld");
    w.tick(epochStart);
    w.u64(instrsAtEpochStart);
    w.boolean(backoff);
    w.u64(replies);
    w.u64(collided);
    w.u64(attempts);
    w.boolean(gadgetLive);
    w.u64(lossAfterGadget);
}

bool
World::adoptFrom(const World &other)
{
    sim::SnapshotWriter w;
    other.saveTo(w);
    sim::SnapshotReader r;
    if (!r.load(w.finish()))
        return false;
    sim::EventRearmer rearmer(sim);
    wisp_->restoreState(r, rearmer);
    if (aud)
        aud->restoreState(r);
    if (edb_)
        edb_->restoreState(r, rearmer);
    r.section("fleetworld");
    epochStart = r.tick();
    instrsAtEpochStart = r.u64();
    backoff = r.boolean();
    replies = r.u64();
    collided = r.u64();
    attempts = r.u64();
    gadgetLive = r.boolean();
    lossAfterGadget = r.u64();
    if (!r.ok())
        return false;
    rearmer.flush();
    // Re-arm the forced-schedule suffix: entries at or before the
    // migration tick are already reflected in the restored state.
    if (!schedule.entries().empty())
        player.arm(schedule, sim.now(),
                   [this](const sim::ScheduleEntry &e) {
                       if (e.op == opBrownOut)
                           wisp_->power().capacitor().setVoltage(
                               e.arg);
                   });
    return true;
}

WorldDigest
World::digest() const
{
    // Architectural digest only: raw event-queue ids are excluded on
    // purpose, because a snapshot round-trip (migration) relabels
    // them while leaving the continuation bit-identical.
    sim::SnapshotWriter w;
    const mcu::Mcu &m = wisp_->mcu();
    w.u64(m.instrCount());
    w.u64(m.cycleCount());
    w.u64(m.rebootCount());
    w.u64(m.faultCount());
    w.u64(m.checkpointCount());
    w.u64(m.restoreCount());
    w.u64(wisp_->power().bootCount());
    w.u32(m.pc());
    w.u8(static_cast<std::uint8_t>(m.state()));
    w.u32(m.flags().pack());
    for (unsigned i = 0; i < isa::numRegs; ++i)
        w.u32(m.reg(i));
    w.f64(wisp_->power().voltageNoAdvance());
    w.tick(sim.now());
    w.rng(sim.rng());
    const mem::Ram &fram = wisp_->framRegion();
    w.u32(sim::crc32(fram.data(), fram.size()));
    const mem::Ram &sram = wisp_->sramRegion();
    w.u32(sim::crc32(sram.data(), sram.size()));
    w.u64(wisp_->framRegion().totalWear());
    if (aud) {
        w.u64(aud->violationCount());
        w.u64(aud->unsealedRestoreCount());
    }
    w.u64(replies);
    w.u64(collided);
    w.u64(attempts);
    w.u64(lossAfterGadget);
    std::vector<std::uint8_t> image = w.finish();
    WorldDigest d;
    d.crc = sim::crc32(image.data(), image.size());
    d.instrs = m.instrCount();
    d.reboots = m.rebootCount();
    return d;
}

} // namespace edb::fleet
