/**
 * @file
 * Work-stealing thread pool for fleet-scale simulation.
 *
 * The pool runs *batches*: the caller submits one task per world,
 * each tagged with a home shard (deque), and blocks until the whole
 * batch has retired — the fleet's epoch barrier. Workers drain their
 * own deque from the front and steal from the back of the busiest
 * victim when empty, so a shard stuck behind an expensive world
 * (e.g. a tag that stayed powered the whole epoch) sheds its backlog
 * to idle shards automatically.
 *
 * Determinism: the pool schedules *which thread* runs a task, never
 * *what the task computes* — tasks are per-world closures touching
 * only their world, and all cross-world coupling happens outside the
 * pool in the sequential barrier phase. `threads == 0` degenerates
 * to inline execution on the caller's thread (the 1-shard baseline
 * the determinism cross-check compares against).
 *
 * Deques are mutex-protected rather than lock-free: a task here is
 * an entire world-epoch (tens of microseconds to milliseconds of
 * work), so queue overhead is noise and the simple implementation is
 * trivially ThreadSanitizer-clean.
 */

#ifndef EDB_FLEET_POOL_HH
#define EDB_FLEET_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace edb::fleet {

/** Work-stealing batch executor (see file header). */
class WorkStealingPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param thread_count Worker threads (and shard deques). 0 runs
     *        batches inline on the caller's thread with one logical
     *        shard.
     */
    explicit WorkStealingPool(unsigned thread_count);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Logical shard count (>= 1 even when inline). */
    unsigned shards() const { return shardCount; }

    /** Worker threads actually running (0 when inline). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Run a batch and wait for it to retire. `tasks[i]` starts on
     * shard `homeShard[i] % shards()`; work stealing may move it.
     * Must not be called re-entrantly from a task.
     */
    void runBatch(std::vector<Task> tasks,
                  const std::vector<unsigned> &homeShard);

    /// @name Statistics (stable between batches)
    /// @{
    /** Tasks executed by their home shard's worker. */
    std::uint64_t executedLocal() const { return localRuns; }
    /** Tasks stolen and executed by another worker. */
    std::uint64_t executedStolen() const { return stolenRuns; }
    /// @}

  private:
    struct Shard
    {
        std::mutex mtx;
        std::deque<Task> q;
    };

    void workerLoop(unsigned self);
    bool popLocal(unsigned self, Task &task);
    bool stealFrom(unsigned self, Task &task);

    unsigned shardCount;
    std::vector<std::unique_ptr<Shard>> shardQ;
    std::vector<std::thread> workers;

    std::mutex batchMtx;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    std::size_t remaining = 0;
    std::uint64_t batchGen = 0;
    bool shutdown = false;

    std::atomic<std::uint64_t> localRuns{0};
    std::atomic<std::uint64_t> stolenRuns{0};
};

} // namespace edb::fleet

#endif // EDB_FLEET_POOL_HH
