/**
 * @file
 * One world of a fleet: an isolated, deterministic simulation of a
 * single tag (Simulator + harvester + Wisp, optionally an NV auditor
 * and an EDB board), advanced in bounded epochs by the fleet's
 * thread pool.
 *
 * Isolation contract: between `planEpoch` (sequential, at the epoch
 * barrier) and the barrier's completion, a world is touched by
 * exactly one pool worker, and nothing a world owns is reachable
 * from any other world — its Simulator, RNG, logger, memories and
 * peripherals are all instance state. The only shared object is the
 * fleet's thread-safe log sink.
 *
 * Worlds are pausable and movable: `saveTo`/`adoptFrom` round-trip
 * the entire simulation through the PR 5 snapshot format, which is
 * what the fleet's shard rebalancer uses to migrate a world — the
 * continuation is bit-identical, so migration never perturbs
 * results (the determinism suite pins this).
 */

#ifndef EDB_FLEET_WORLD_HH
#define EDB_FLEET_WORLD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "edb/board.hh"
#include "energy/harvester.hh"
#include "fuzz/generator.hh"
#include "mem/nv_audit.hh"
#include "rfid/channel.hh"
#include "sim/replay.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "target/wisp.hh"

namespace edb::fleet {

/** Per-world construction parameters (derived by the Fleet). */
struct WorldConfig
{
    /** Fleet-wide tag id (also the arbiter's identity). */
    std::uint32_t id = 0;
    /** Derived world seed (sim::deriveSeed(fleetSeed, id)). */
    std::uint64_t seed = 1;
    /** Reader transmit power seen by this tag. */
    double txPowerDbm = 30.0;
    /** This tag's distance to the reader. */
    double distanceM = 1.0;
    /** Carrier fraction lost to re-arbitration after a collision
     *  (RfEnvConfig::collisionBackoff, copied in by the fleet). */
    double collisionBackoff = 0.5;
    /** Target device configuration. */
    target::WispConfig wisp = {};
    /** Attach the WAR consistency auditor. */
    bool withAuditor = false;
    /** Attach a (passive) EDB debugger board. */
    bool withEdb = false;
    /** Forced brown-out schedule (auditor sweeps). */
    std::vector<fuzz::BrownOut> schedule;
    /** PC of the WAR gadget's completion label (0 = no watch).
     *  Installs a tracer, so such worlds run un-superblocked. */
    mem::Addr warDoneWatch = 0;
};

/** Architectural end-state digest, schedule- and migration-
 *  invariant (raw event-queue ids are deliberately excluded). */
struct WorldDigest
{
    std::uint32_t crc = 0;
    std::uint64_t instrs = 0;
    std::uint64_t reboots = 0;

    bool operator==(const WorldDigest &) const = default;
};

/** See file header. */
class World
{
  public:
    World(const isa::Program &program, const WorldConfig &config);

    /** Begin execution (not for worlds about to adopt a snapshot). */
    void start();

    /**
     * Sequential barrier phase: stage the next epoch. Sets the
     * carrier window for [epoch_start, epoch_end) — the fraction of
     * the epoch the reader illuminates this tag (duty cycle minus
     * any post-collision backoff).
     */
    void planEpoch(sim::Tick epoch_start, sim::Tick epoch_end,
                   double carrier_fraction);

    /** Worker-thread phase: run the local event loop to the barrier. */
    void advanceTo(sim::Tick epoch_end);

    /** Did the tag retire instructions this epoch (reply attempt)? */
    bool attemptedUplink() const;

    /** Barrier feedback from the arbiter. */
    void noteOutcome(rfid::SlotOutcome outcome);

    /// @name Migration (snapshot-based; see file header)
    /// @{
    void saveTo(sim::SnapshotWriter &w) const;
    /** Adopt `other`'s full state; call on a fresh, un-started
     *  world built from the same program and config.
     *  @return false when the snapshot round-trip failed. */
    bool adoptFrom(const World &other);
    /// @}

    /** Architectural end-state digest. */
    WorldDigest digest() const;

    /// @name Accessors
    /// @{
    const WorldConfig &config() const { return cfg; }
    sim::Simulator &simulator() { return sim; }
    target::Wisp &wisp() { return *wisp_; }
    const target::Wisp &wisp() const { return *wisp_; }
    mem::NvAuditor *auditor() { return aud.get(); }
    const mem::NvAuditor *auditor() const { return aud.get(); }
    edbdbg::EdbBoard *edb() { return edb_.get(); }
    /// @}

    /// @name Fleet-visible statistics
    /// @{
    std::uint64_t instrCount() const;
    std::uint64_t instrsThisEpoch() const;
    std::uint64_t repliesWon() const { return replies; }
    std::uint64_t collisionsSeen() const { return collided; }
    std::uint64_t attemptsMade() const { return attempts; }
    /** Power losses observed after the WAR gadget completed. */
    std::uint64_t lossesAfterGadget() const { return lossAfterGadget; }
    /// @}

  private:
    void installHooks();

    WorldConfig cfg;
    sim::Simulator sim;
    energy::RfHarvester harvester;
    std::unique_ptr<target::Wisp> wisp_;
    std::unique_ptr<mem::NvAuditor> aud;
    std::unique_ptr<edbdbg::EdbBoard> edb_;
    sim::ScheduleLog schedule;
    sim::SchedulePlayer player;

    sim::Tick epochStart = 0;
    std::uint64_t instrsAtEpochStart = 0;
    bool backoff = false;

    std::uint64_t replies = 0;
    std::uint64_t collided = 0;
    std::uint64_t attempts = 0;

    bool gadgetLive = false;
    std::uint64_t lossAfterGadget = 0;
};

} // namespace edb::fleet

#endif // EDB_FLEET_WORLD_HH
