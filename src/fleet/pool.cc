#include "fleet/pool.hh"

namespace edb::fleet {

WorkStealingPool::WorkStealingPool(unsigned thread_count)
    : shardCount(thread_count == 0 ? 1 : thread_count)
{
    shardQ.reserve(shardCount);
    for (unsigned i = 0; i < shardCount; ++i)
        shardQ.push_back(std::make_unique<Shard>());
    if (thread_count == 0)
        return;
    workers.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lock(batchMtx);
        shutdown = true;
    }
    workCv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
WorkStealingPool::runBatch(std::vector<Task> tasks,
                           const std::vector<unsigned> &homeShard)
{
    if (workers.empty()) {
        // Inline mode: the caller's thread is the single shard.
        for (Task &t : tasks) {
            t();
            localRuns.fetch_add(1, std::memory_order_relaxed);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(batchMtx);
        remaining = tasks.size();
        ++batchGen;
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        unsigned shard =
            (i < homeShard.size() ? homeShard[i] : 0) % shardCount;
        std::lock_guard<std::mutex> lock(shardQ[shard]->mtx);
        shardQ[shard]->q.push_back(std::move(tasks[i]));
    }
    workCv.notify_all();
    std::unique_lock<std::mutex> lock(batchMtx);
    doneCv.wait(lock, [this] { return remaining == 0; });
}

bool
WorkStealingPool::popLocal(unsigned self, Task &task)
{
    Shard &s = *shardQ[self];
    std::lock_guard<std::mutex> lock(s.mtx);
    if (s.q.empty())
        return false;
    task = std::move(s.q.front());
    s.q.pop_front();
    return true;
}

bool
WorkStealingPool::stealFrom(unsigned self, Task &task)
{
    // Scan for the deepest victim, then take from its back — the
    // classic steal-the-cold-end policy, keeping the victim's front
    // (its cache-warm next task) untouched.
    unsigned victim = shardCount;
    std::size_t deepest = 0;
    for (unsigned v = 0; v < shardCount; ++v) {
        if (v == self)
            continue;
        std::lock_guard<std::mutex> lock(shardQ[v]->mtx);
        if (shardQ[v]->q.size() > deepest) {
            deepest = shardQ[v]->q.size();
            victim = v;
        }
    }
    if (victim == shardCount)
        return false;
    Shard &s = *shardQ[victim];
    std::lock_guard<std::mutex> lock(s.mtx);
    if (s.q.empty())
        return false;
    task = std::move(s.q.back());
    s.q.pop_back();
    return true;
}

void
WorkStealingPool::workerLoop(unsigned self)
{
    std::uint64_t seenGen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(batchMtx);
            workCv.wait(lock, [this, &seenGen] {
                return shutdown ||
                       (remaining != 0 && batchGen != seenGen);
            });
            if (shutdown)
                return;
            seenGen = batchGen;
        }
        for (;;) {
            Task task;
            bool stolen = false;
            if (!popLocal(self, task)) {
                if (!stealFrom(self, task))
                    break;
                stolen = true;
            }
            task();
            (stolen ? stolenRuns : localRuns)
                .fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(batchMtx);
            if (--remaining == 0) {
                doneCv.notify_all();
                break;
            }
        }
    }
}

} // namespace edb::fleet
