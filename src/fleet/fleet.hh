/**
 * @file
 * Fleet orchestrator: thousands of deterministic tag worlds on a
 * work-stealing thread pool, coupled through a shared RF environment
 * (DESIGN.md §12).
 *
 * Execution model — *bounded epochs with a sequential barrier*:
 *
 *   1. plan:     (sequential, world-index order) each world stages
 *                its carrier window for the coming epoch — reader
 *                duty cycle minus any post-collision backoff;
 *   2. advance:  (parallel) the pool runs every world's local event
 *                loop up to the epoch barrier; a world is touched by
 *                exactly one worker and shares nothing mutable;
 *   3. resolve:  (sequential, world-index order) the slotted
 *                arbiter settles cross-world RF contention and
 *                feeds outcomes back into the worlds;
 *   4. balance:  every `rebalancePeriod` epochs the busiest world
 *                migrates — via a full snapshot round-trip — from
 *                the most- to the least-loaded shard.
 *
 * Determinism argument: every cross-world decision happens in the
 * sequential phases in a canonical order, from inputs (instruction
 * counts, hashes, derived seeds) that are themselves deterministic;
 * the parallel phase only advances disjoint worlds whose coupling
 * inputs were fixed at plan time. Migration relies on the PR 5
 * bit-identical-resume guarantee, so even shard-count-dependent
 * rebalancing cannot perturb any world's trajectory — per-world
 * digests are bit-identical at 1, 2 and N shards (pinned by
 * tests/test_fleet.cc).
 *
 * Seed derivation: world `i` simulates under
 * `sim::deriveSeed(fleetSeed, worldStream + i)`; the arbiter and the
 * distance distribution use their own derived streams. No world
 * shares an RNG with any other, and adding a world never shifts an
 * existing world's stream.
 */

#ifndef EDB_FLEET_FLEET_HH
#define EDB_FLEET_FLEET_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/pool.hh"
#include "fleet/world.hh"
#include "rfid/channel.hh"
#include "sim/logging.hh"

namespace edb::fleet {

/** Per-world firmware + electrical overrides, produced by the
 *  firmware function for each world index. */
struct WorldFirmware
{
    /** Assembly listing (worlds sharing a listing share the
     *  assembled image). */
    std::string listing;
    /** Forced brown-out schedule (auditor sweeps; usually empty —
     *  fleet worlds brown out naturally from the RF model). */
    std::vector<fuzz::BrownOut> schedule;
    /** Hardware checkpoint unit enable. */
    bool checkpointing = true;
    /** Storage capacitor override (0 = keep the fleet default). */
    double capacitanceF = 0.0;
    /** Initial capacitor voltage override (< 0 = keep default). */
    double initialVolts = -1.0;
    /** This is a seeded-WAR mutant: watch `war_done`, require the
     *  auditor, and expect a violation once power fails after it. */
    bool warMutant = false;
};

/** Maps world index → firmware. */
using FirmwareFn = std::function<WorldFirmware(std::uint32_t)>;

/** Fleet-wide configuration. */
struct FleetConfig
{
    /** Number of tag worlds. */
    unsigned tags = 64;
    /** Worker threads (0 = run inline on the caller's thread). */
    unsigned threads = 0;
    /** Fleet seed; everything else derives from it. */
    std::uint64_t seed = 1;
    /** Epoch length (the determinism barrier period). */
    sim::Tick epochLength = 5 * sim::oneMs;
    /** Shared RF environment. */
    rfid::RfEnvConfig env = {};
    /** Base target configuration (per-world copies). */
    target::WispConfig wisp = {};
    /** Attach the WAR auditor to every world. */
    bool withAuditor = false;
    /** Attach a passive EDB board to every Nth world (0 = none). */
    unsigned edbEvery = 0;
    /** Epochs between shard rebalancing migrations (0 = off). */
    unsigned rebalancePeriod = 0;
};

/** Aggregate per-epoch channel statistics. */
struct ChannelStats
{
    std::uint64_t attempts = 0;
    std::uint64_t replies = 0;
    std::uint64_t collisions = 0;
};

/** See file header. */
class Fleet
{
  public:
    /**
     * @param firmware Firmware per world; default: every world runs
     *        the built-in checkpointing counter/buffer loop.
     */
    explicit Fleet(FleetConfig config, FirmwareFn firmware = {});

    /** Advance the whole fleet by `epochs` barrier periods. */
    void runEpochs(unsigned epochs);

    /// @name Inspection
    /// @{
    std::size_t size() const { return worlds.size(); }
    World &world(std::size_t i) { return *worlds[i]; }
    const World &world(std::size_t i) const { return *worlds[i]; }
    /** Per-world end-state digests (index order). */
    std::vector<WorldDigest> digests() const;
    /** Sum of instructions retired across all worlds. */
    std::uint64_t totalInstrs() const;
    std::uint64_t epochsRun() const { return epochIndex; }
    sim::Tick now() const { return clock; }
    std::uint64_t migrations() const { return migrations_; }
    const rfid::SlottedArbiter &arbiter() const { return arbiter_; }
    const WorkStealingPool &pool() const { return pool_; }
    const ChannelStats &channelStats() const { return chan; }
    /** Shared thread-safe sink all world loggers feed. */
    sim::AggregatingSink &logSink() { return sink_; }
    /** Current home shard of world `i` (migration moves it). */
    unsigned homeShardOf(std::size_t i) const { return homeShard[i]; }
    /** Assembled firmware image world `i` runs (shared across
     *  worlds with equal listings; used by the debug server's
     *  static-analysis commands). */
    const isa::Program &worldProgram(std::size_t i) const
    {
        return *worldImage[i];
    }
    /// @}

    /** The built-in throughput firmware (shared by all worlds). */
    static WorldFirmware defaultFirmware();

    /// @name Seed-derivation streams (documented contract)
    /// @{
    static constexpr std::uint64_t worldStream = 0x10000;
    static constexpr std::uint64_t arbiterStream = 1;
    static constexpr std::uint64_t distanceStream = 2;
    /// @}

  private:
    void buildWorlds(const FirmwareFn &firmware);
    void rebalance();

    FleetConfig cfg;
    WorkStealingPool pool_;
    rfid::SlottedArbiter arbiter_;
    sim::AggregatingSink sink_;

    /** Assembled images, shared across worlds with equal listings. */
    std::map<std::string, isa::Program> images;
    std::vector<std::unique_ptr<World>> worlds;
    std::vector<WorldConfig> worldCfgs;
    std::vector<const isa::Program *> worldImage;
    std::vector<unsigned> homeShard;

    sim::Tick clock = 0;
    std::uint64_t epochIndex = 0;
    std::uint64_t migrations_ = 0;
    ChannelStats chan;

    /** Scratch reused each epoch (attempt gather). */
    std::vector<std::uint32_t> attemptIds;
    std::vector<std::size_t> attemptWorlds;
};

} // namespace edb::fleet

#endif // EDB_FLEET_FLEET_HH
