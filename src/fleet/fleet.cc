#include "fleet/fleet.hh"

#include <algorithm>

#include "isa/assembler.hh"
#include "sim/rng.hh"

namespace edb::fleet {

Fleet::Fleet(FleetConfig config, FirmwareFn firmware)
    : cfg(config), pool_(config.threads),
      arbiter_(config.env,
               sim::deriveSeed(config.seed, arbiterStream)),
      sink_(/*keep_last=*/64)
{
    if (!firmware)
        firmware = [](std::uint32_t) { return defaultFirmware(); };
    buildWorlds(firmware);
}

WorldFirmware
Fleet::defaultFirmware()
{
    // The fleet throughput workload: bump a persistent counter,
    // refresh an 8-word FRAM telemetry buffer, checkpoint, repeat.
    // WAR-free by construction (every store goes through a
    // freshly-materialised base register), so the auditor sweep's
    // clean population really is clean.
    WorldFirmware fw;
    fw.listing = ".equ COUNTER, 0x6000\n"
                 ".equ BUF, 0x6100\n"
                 "main:\n"
                 "    la   r1, COUNTER\n"
                 "    ldw  r2, [r1]\n"
                 "work:\n"
                 "    addi r2, r2, 1\n"
                 "    la   r1, COUNTER\n"
                 "    stw  r2, [r1]\n"
                 "    la   r3, BUF\n"
                 "    li   r4, 8\n"
                 "fill:\n"
                 "    stw  r2, [r3 + 0]\n"
                 "    addi r3, r3, 4\n"
                 "    addi r4, r4, -1\n"
                 "    cmpi r4, 0\n"
                 "    bne  fill\n"
                 "    chkpt\n"
                 "    br   work\n";
    fw.checkpointing = true;
    return fw;
}

void
Fleet::buildWorlds(const FirmwareFn &firmware)
{
    // Distances are drawn from a fleet-level stream in index order,
    // so world i's placement is independent of thread count and of
    // every other world's simulation.
    sim::Rng placement(sim::deriveSeed(cfg.seed, distanceStream));
    worlds.reserve(cfg.tags);
    worldCfgs.reserve(cfg.tags);
    worldImage.reserve(cfg.tags);
    homeShard.reserve(cfg.tags);
    for (std::uint32_t i = 0; i < cfg.tags; ++i) {
        WorldFirmware fw = firmware(i);
        auto it = images.find(fw.listing);
        if (it == images.end())
            it = images
                     .emplace(fw.listing, isa::assemble(fw.listing))
                     .first;
        const isa::Program &prog = it->second;

        WorldConfig wc;
        wc.id = i;
        wc.seed = sim::deriveSeed(cfg.seed, worldStream + i);
        wc.txPowerDbm = cfg.env.txPowerDbm;
        wc.distanceM = placement.uniform(cfg.env.minDistanceM,
                                         cfg.env.maxDistanceM);
        wc.collisionBackoff = cfg.env.collisionBackoff;
        wc.wisp = cfg.wisp;
        wc.wisp.mcu.checkpointingEnabled = fw.checkpointing;
        if (fw.capacitanceF > 0.0)
            wc.wisp.power.capacitanceF = fw.capacitanceF;
        if (fw.initialVolts >= 0.0)
            wc.wisp.power.initialVolts = fw.initialVolts;
        wc.withAuditor = cfg.withAuditor || fw.warMutant;
        wc.withEdb = cfg.edbEvery != 0 && i % cfg.edbEvery == 0;
        wc.schedule = fw.schedule;
        if (fw.warMutant)
            wc.warDoneWatch = prog.symbol("war_done");

        auto w = std::make_unique<World>(prog, wc);
        w->simulator().logger().setSink(&sink_);
        w->start();
        worlds.push_back(std::move(w));
        worldCfgs.push_back(std::move(wc));
        worldImage.push_back(&prog);
        homeShard.push_back(i % pool_.shards());
    }
}

void
Fleet::runEpochs(unsigned epochs)
{
    std::vector<WorkStealingPool::Task> tasks(worlds.size());
    for (unsigned e = 0; e < epochs; ++e) {
        const sim::Tick epochEnd = clock + cfg.epochLength;

        // Phase 1 (sequential): stage carrier windows.
        for (auto &w : worlds)
            w->planEpoch(clock, epochEnd, cfg.env.dutyCycle);

        // Phase 2 (parallel): advance every world to the barrier.
        for (std::size_t i = 0; i < worlds.size(); ++i) {
            World *w = worlds[i].get();
            tasks[i] = [w, epochEnd] { w->advanceTo(epochEnd); };
        }
        pool_.runBatch(tasks, homeShard);

        // Phase 3 (sequential, index order): resolve RF contention.
        attemptIds.clear();
        attemptWorlds.clear();
        for (std::size_t i = 0; i < worlds.size(); ++i) {
            if (!worlds[i]->attemptedUplink())
                continue;
            attemptIds.push_back(worlds[i]->config().id);
            attemptWorlds.push_back(i);
        }
        if (!attemptIds.empty()) {
            std::vector<rfid::SlotOutcome> outcomes =
                arbiter_.resolve(epochIndex, attemptIds);
            for (std::size_t k = 0; k < attemptWorlds.size(); ++k) {
                worlds[attemptWorlds[k]]->noteOutcome(outcomes[k]);
                chan.attempts++;
                if (outcomes[k] == rfid::SlotOutcome::Won)
                    chan.replies++;
                else
                    chan.collisions++;
            }
        }

        // Phase 4 (sequential): rebalance shards by migration.
        clock = epochEnd;
        ++epochIndex;
        if (cfg.rebalancePeriod != 0 &&
            epochIndex % cfg.rebalancePeriod == 0)
            rebalance();
    }
}

void
Fleet::rebalance()
{
    if (pool_.shards() < 2)
        return;
    // Shard load = instructions its worlds retired this epoch; move
    // the hottest world off the most-loaded shard. Decisions depend
    // only on deterministic per-world counters, and the migration
    // itself is a bit-identical continuation, so shard-count-specific
    // choices cannot perturb any world's trajectory.
    std::vector<std::uint64_t> load(pool_.shards(), 0);
    for (std::size_t i = 0; i < worlds.size(); ++i)
        load[homeShard[i]] += worlds[i]->instrsThisEpoch();
    const auto hot =
        std::max_element(load.begin(), load.end()) - load.begin();
    const auto cold =
        std::min_element(load.begin(), load.end()) - load.begin();
    if (hot == cold || load[hot] == load[cold])
        return;
    std::size_t pick = worlds.size();
    std::uint64_t best = 0;
    for (std::size_t i = 0; i < worlds.size(); ++i) {
        if (homeShard[i] != static_cast<unsigned>(hot))
            continue;
        if (pick == worlds.size() ||
            worlds[i]->instrsThisEpoch() > best) {
            pick = i;
            best = worlds[i]->instrsThisEpoch();
        }
    }
    if (pick == worlds.size())
        return;
    auto fresh =
        std::make_unique<World>(*worldImage[pick], worldCfgs[pick]);
    fresh->simulator().logger().setSink(&sink_);
    if (!fresh->adoptFrom(*worlds[pick]))
        return; // keep the original; migration is best-effort
    worlds[pick] = std::move(fresh);
    homeShard[pick] = static_cast<unsigned>(cold);
    ++migrations_;
}

std::vector<WorldDigest>
Fleet::digests() const
{
    std::vector<WorldDigest> out;
    out.reserve(worlds.size());
    for (const auto &w : worlds)
        out.push_back(w->digest());
    return out;
}

std::uint64_t
Fleet::totalInstrs() const
{
    std::uint64_t sum = 0;
    for (const auto &w : worlds)
        sum += w->instrCount();
    return sum;
}

} // namespace edb::fleet
