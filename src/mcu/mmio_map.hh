/**
 * @file
 * MMIO register addresses of the simulated target MCU.
 *
 * The 0xF000-0xFFFF page is the peripheral page. Guest assembly
 * (apps, libEDB) accesses these with `la` + `ldw`/`stw`.
 */

#ifndef EDB_MCU_MMIO_MAP_HH
#define EDB_MCU_MMIO_MAP_HH

#include <cstdint>

namespace edb::mcu::mmio {

constexpr std::uint32_t base = 0xF000;
constexpr std::uint32_t size = 0x1000;

// GPIO port (32 pins).
constexpr std::uint32_t gpioOut = 0xF000;    ///< rw: output levels
constexpr std::uint32_t gpioIn = 0xF004;     ///< r: input levels
constexpr std::uint32_t gpioToggle = 0xF008; ///< w: xor into output

// Console UART (the paper's "UART printf" instrumentation path).
constexpr std::uint32_t uart0Tx = 0xF010;     ///< w: transmit byte
constexpr std::uint32_t uart0Status = 0xF014; ///< r: bit0 txBusy, bit1 rxAvail
constexpr std::uint32_t uart0Rx = 0xF018;     ///< r: pop received byte

// I2C master (accelerometer et al.).
constexpr std::uint32_t i2cAddr = 0xF020;   ///< w: 7-bit device address
constexpr std::uint32_t i2cReg = 0xF024;    ///< w: device register
constexpr std::uint32_t i2cData = 0xF028;   ///< rw: data byte
constexpr std::uint32_t i2cCtrl = 0xF02C;   ///< w: 1=read, 2=write
constexpr std::uint32_t i2cStatus = 0xF030; ///< r: bit0 busy, bit1 done

// On-chip ADC (the self-measurement path the paper notes is costly).
constexpr std::uint32_t adcCtrl = 0xF034;   ///< w: start, value=channel
constexpr std::uint32_t adcStatus = 0xF038; ///< r: bit0 busy, bit1 done
constexpr std::uint32_t adcValue = 0xF03C;  ///< r: 12-bit result

// RF (RFID) front end.
constexpr std::uint32_t rfRxStatus = 0xF040; ///< r: bit0 msg avail
constexpr std::uint32_t rfRxLen = 0xF044;    ///< r: length of head msg
constexpr std::uint32_t rfRxByte = 0xF048;   ///< r: pop payload byte
constexpr std::uint32_t rfTxByte = 0xF04C;   ///< w: append to tx frame
constexpr std::uint32_t rfTxCtrl = 0xF050;   ///< w: 1=transmit frame
constexpr std::uint32_t rfTxStatus = 0xF054; ///< r: bit0 busy

// EDB debug port (code markers, debug-request line, debug UART).
constexpr std::uint32_t marker = 0xF060;        ///< w: pulse marker lines
constexpr std::uint32_t dbgReq = 0xF064;        ///< rw: request line level
constexpr std::uint32_t dbgUartTx = 0xF068;     ///< w: byte to debugger
constexpr std::uint32_t dbgUartStatus = 0xF06C; ///< r: bit0 busy, bit1 avail
constexpr std::uint32_t dbgUartRx = 0xF070;     ///< r: pop byte
constexpr std::uint32_t bkptMask = 0xF074;      ///< r: passive bkpt bitmap

// Misc.
constexpr std::uint32_t led = 0xF080;     ///< rw: bit0 LED on
constexpr std::uint32_t cycleLo = 0xF084; ///< r: cycle counter low 32
constexpr std::uint32_t cycleHi = 0xF088; ///< r: cycle counter high 32
constexpr std::uint32_t chkptCtl = 0xF090; ///< rw: bit0 enable restore
/**
 * Timed low-power wait: write N to suspend execution for N core
 * cycles at the sleep current (Dewdrop-style duty cycling). A debug
 * interrupt wakes the core early.
 */
constexpr std::uint32_t sleep = 0xF094;

} // namespace edb::mcu::mmio

#endif // EDB_MCU_MMIO_MAP_HH
