/**
 * @file
 * The EH32 MCU core: interpreter, power behaviour, checkpoint unit.
 *
 * This is the execution substrate for the intermittent model of the
 * paper (Section 2): the core draws supply current per cycle while
 * running; when the power system browns out, the core stops wherever
 * it happens to be (losing the in-flight instruction), volatile state
 * is destroyed, and the next turn-on reboots from the entry point —
 * or from a hardware checkpoint when the Mementos/QuickRecall-style
 * checkpoint unit is enabled.
 */

#ifndef EDB_MCU_MCU_HH
#define EDB_MCU_MCU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "energy/power_system.hh"
#include "isa/isa.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::mem {
class NvAuditor;
class NvRegion;
} // namespace edb::mem

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::mcu {

/**
 * Checkpoint commit discipline of the hardware checkpoint unit
 * (DESIGN.md §11). All three double-buffer between the two slots;
 * they differ in *when* a slot becomes eligible for restore relative
 * to its payload writes — which is exactly what decides whether a
 * torn commit can surface as a hybrid state after reboot.
 */
enum class CommitDiscipline : std::uint8_t
{
    /** Payload first, sequence number last (the seed behaviour).
     *  A torn commit leaves the victim slot with its old sequence
     *  number, so restores fall through to the other slot — but
     *  nothing *verifies* the restored frame. */
    SeqLast,
    /** Claim the slot first (magic + sequence number), then write
     *  the payload. A torn commit leaves the newest sequence number
     *  on a half-written frame: the restore scan picks it and resumes
     *  a hybrid state. Exists to give the fault model teeth. */
    Naive,
    /** Payload, then a CRC seal binding payload to sequence number,
     *  then the sequence number. The boot-time recovery scan restores
     *  the newest frame whose seal verifies and falls back to the
     *  previous sealed frame when the newest is torn. */
    Sealed,
};

/** Static configuration of the MCU core. */
struct McuConfig
{
    /** Core clock (WISP 5 runs its MSP430 around 4 MHz). */
    double clockHz = 4e6;
    /** Supply current while executing (paper: ~0.5 mA at 4 MHz). */
    double activeAmps = 0.5e-3;
    /** Supply current when halted (deep sleep). */
    double haltAmps = 50e-6;
    /** Supply current during a timed low-power wait (LPM sleep). */
    double sleepAmps = 2e-6;
    /** Extra cycles for any data-memory access. */
    unsigned memExtraCycles = 1;
    /** Additional wait-state cycles for FRAM writes. */
    unsigned framWriteExtraCycles = 2;
    /** Cycles consumed entering the debug interrupt handler. */
    unsigned irqEntryCycles = 6;
    /** Reset / power-management settle time after turn-on. */
    sim::Tick bootDelay = 100 * sim::oneUs;
    /** Max instructions-slice length per event. */
    sim::Tick sliceQuantum = 100 * sim::oneUs;

    /// @name Fast-path execution (default on)
    /// Each mechanism is bit-identical to the reference path — same
    /// instruction stream, same power sub-step sequence, same RNG
    /// draws. The flags exist so the determinism suite can diff the
    /// fast and reference paths instruction-for-instruction.
    /// @{
    /** Predecoded instruction cache indexed by PC: decode each code
     *  word once, invalidated on writes into the cached range and on
     *  loadProgram / brown-out. */
    bool predecodeCache = true;
    /** Last-hit region cache in the memory map (flat dispatch). */
    bool flatDispatch = true;
    /** Drain per-instruction energy through the single-sub-step
     *  PowerSystem::drainStep entry instead of the general
     *  advanceTo path. */
    bool batchedDrain = true;
    /** Amortize the event-queue peek over slice segments: re-read
     *  sim().nextEventTime() only after an instruction that could
     *  have scheduled an event (MMIO access, tracer). */
    bool batchedSlices = true;
    /** Superblock tier on top of the predecode cache: compile hot
     *  straight-line runs (bounded by branches, barriers and the
     *  block length cap) into threaded-code blocks, execute their
     *  thunks back to back and drain the whole block's energy with
     *  one batched PowerSystem::drainBlock call. Only engages when
     *  predecodeCache, batchedDrain and batchedSlices are also on;
     *  falls back to per-instruction stepping whenever the
     *  brown-out pre-check cannot rule out a mid-block power loss.
     *  Bit-identical to the reference interpreter. */
    bool superblocks = true;
    /** Max instructions per superblock (hard-capped at 32). */
    unsigned superblockMaxLen = 32;
    /** Blocks shorter than this are not worth registering. */
    unsigned superblockMinLen = 3;
    /// @}

    /** Hardware checkpoint unit enable (restore-on-boot). */
    bool checkpointingEnabled = false;
    /** FRAM base of the two checkpoint slots. */
    mem::Addr checkpointBase = 0xE000;
    /** Bytes per checkpoint slot (two slots used). */
    mem::Addr checkpointSlotSize = 0x800;
    /** Initial stack pointer / top bound of checkpointed stack. */
    mem::Addr stackTop = 0x4000;
    /** Commit protocol of the checkpoint unit (DESIGN.md §11). */
    CommitDiscipline commitDiscipline = CommitDiscipline::SeqLast;
    /**
     * Interruptible commit: drain each commit word's write energy
     * individually, so a brown-out (natural or injected) can land
     * *inside* the FRAM write burst and tear it — prefix committed,
     * suffix old. Off by default: the seed model drains the whole
     * checkpoint cost atomically before the burst, which makes
     * mid-commit tears unrepresentable.
     */
    bool interruptibleCommit = false;
};

/** Lifecycle state of the core. */
enum class McuState : std::uint8_t
{
    Off,     ///< Below brown-out; no execution.
    Booting, ///< Powered, waiting out the reset delay.
    Running, ///< Executing instructions.
    Halted,  ///< HALT executed; low-power until reboot.
    Faulted, ///< Undefined behaviour hit; dead until reboot.
};

/** Cause of a fault. */
enum class McuFault : std::uint8_t
{
    None,
    IllegalInstr, ///< Undecodable opcode reached.
    BusError,     ///< Access to an unmapped address (wild pointer).
    Misaligned,   ///< Unaligned word access.
};

/** Human-readable state / fault names. */
const char *mcuStateName(McuState state);
const char *mcuFaultName(McuFault fault);

/**
 * EH32 interpreter bound to a memory map and a power system.
 */
class Mcu : public sim::Component
{
  public:
    /** Reset hook: invoked on every reboot (peripheral reset). */
    using ResetHook = std::function<void()>;
    /** Instruction tracer: (pc, decoded instruction). */
    using Tracer = std::function<void(mem::Addr, const isa::Instr &)>;

    Mcu(sim::Simulator &simulator, std::string component_name,
        sim::TimeCursor &cursor, mem::MemoryMap &memory,
        energy::PowerSystem &power, McuConfig config = {});

    ~Mcu() override;

    /// @name Program loading
    /// @{
    /** Flash a program image into memory and set vectors. */
    void loadProgram(const isa::Program &program);
    void setEntry(mem::Addr addr) { entry = addr; }
    void setIrqHandler(mem::Addr addr) { irqHandler = addr; }
    mem::Addr entryPoint() const { return entry; }
    /// @}

    /// @name Core state
    /// @{
    McuState state() const { return state_; }
    McuFault fault() const { return fault_; }
    mem::Addr pc() const { return pc_; }
    std::uint32_t reg(unsigned index) const { return regs.at(index); }
    void setReg(unsigned index, std::uint32_t v) { regs.at(index) = v; }
    const isa::Flags &flags() const { return flags_; }
    /// @}

    /// @name Statistics
    /// @{
    std::uint64_t cycleCount() const { return cycles; }
    std::uint64_t instrCount() const { return instrs; }
    std::uint64_t rebootCount() const { return reboots; }
    std::uint64_t faultCount() const { return faults; }
    std::uint64_t checkpointCount() const { return checkpointsTaken; }
    std::uint64_t restoreCount() const { return checkpointsRestored; }
    /// @}

    /// @name Debug interrupt (EDB's "Interrupt" line, paper Fig 5)
    /// @{
    void raiseDebugIrq() { irqLine = true; }
    void clearDebugIrq() { irqLine = false; }
    bool inDebugIrq() const { return inIrq; }
    /// @}

    /** Peripheral/board reset hook called on each reboot. */
    void setResetHook(ResetHook hook) { resetHook = std::move(hook); }

    /**
     * Optional instruction tracer (tests, debugging). `owner` tags
     * the installer so layered hooks (e.g. the debug server's world
     * probes, which chain under a world's own tracer) can tell
     * whether the installed hook is already theirs.
     */
    void
    setTracer(Tracer t, const void *owner = nullptr)
    {
        tracer = std::move(t);
        tracerOwner_ = owner;
    }

    /** Tag passed to the setTracer call that installed the current
     *  hook (nullptr for untagged installs and fresh cores). */
    const void *tracerOwner() const { return tracerOwner_; }

    /** The currently installed tracer (empty when none). */
    const Tracer &tracerHook() const { return tracer; }

    /**
     * Attach the NV consistency auditor (nullptr detaches). The core
     * drives its register-taint machine and lifecycle hooks; the
     * owner must also install `mem::NvAuditor::rawWriteHook` on the
     * memory map so erasing writes are seen regardless of source.
     */
    void setAuditor(mem::NvAuditor *auditor) { audit_ = auditor; }
    mem::NvAuditor *auditor() const { return audit_; }

    /**
     * Attach the NV region hosting the checkpoint slots (nullptr
     * detaches). The commit unit drives its burst latch / commit-slot
     * selector, and an *active* region (energy/wear modelling on)
     * disables the superblock tier so batched execution never skips
     * the per-write energy accounting.
     */
    void setNvRegion(mem::NvRegion *region);
    mem::NvRegion *nvRegion() const { return nv_; }

    /**
     * Fault-injection hooks of the interruptible commit path.
     * `onCommitWord` fires before each commit word's energy drain
     * (wire to FaultInjector::onNvCommitWord); `onTornWord` decides
     * the disposition of the in-flight word when the burst tears
     * (wire to FaultInjector::onTornWord).
     */
    struct NvCommitHooks
    {
        std::function<void()> onCommitWord;
        std::function<bool(std::uint32_t &)> onTornWord;
    };
    void setNvCommitHooks(NvCommitHooks hooks)
    {
        nvHooks_ = std::move(hooks);
    }

    /** Commits that ended torn (power lost mid-burst). */
    std::uint64_t tornCommitCount() const { return tornCommits_; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

    /** Live checkpoint-unit enable (also via MMIO chkptCtl). */
    void setCheckpointingEnabled(bool on) { chkptEnabled = on; }
    bool checkpointingEnabled() const { return chkptEnabled; }

    /** True while in a timed low-power wait (see mmio::sleep). */
    bool sleeping() const { return sleepCycles > 0; }

    /** Zero out both checkpoint slots (done at program load). */
    void invalidateCheckpoints();

    /** Install the cycle counter and checkpoint-control registers. */
    void installMmio(mem::MmioRegion &mmio);

    /// @name Instrument access (not the debugger protocol path)
    /// @{
    std::uint32_t debugRead32(mem::Addr addr) const;
    void debugWrite32(mem::Addr addr, std::uint32_t value);
    /// @}

    const McuConfig &config() const { return cfg; }

    /** Tick duration of one core clock cycle. */
    sim::Tick cyclePeriod() const { return cyclePeriod_; }

    /// @name Static-analysis cost quotes (analysis/cost_model.hh)
    /// The energy analyzer's per-instruction cost table is extracted
    /// through these instead of re-deriving the cost rules, so the
    /// table can never drift from what the interpreter charges: both
    /// paths share classifyCost / the checkpoint cost formula.
    /// @{
    struct CostQuote
    {
        /** Cycles charged when no dynamic surcharge applies (already
         *  includes memExtraCycles for memory-touching opcodes). */
        unsigned cycles = 0;
        /** Extra cycles when a store's effective address lands in
         *  FRAM; zero for every non-store opcode. */
        unsigned framExtraCycles = 0;
        /** CHKPT with the checkpoint unit enabled: the cost is a
         *  function of live stack depth — use
         *  checkpointCostCyclesFor, not `cycles`. */
        bool stackDependent = false;
    };
    /** Decode-time cost of `op`, exactly as step() would charge it. */
    CostQuote costQuote(isa::Opcode op) const;
    /**
     * Commit cost of an (atomic) CHKPT for a given stack depth, in
     * cycles: the same formula checkpointCostCycles() applies to the
     * live stack pointer. Under interruptible commit the interpreter
     * charges baseCycles(Chkpt) up front and the same per-word total
     * during the burst, so this is the commit-burst cost either way.
     */
    unsigned checkpointCostCyclesFor(std::uint32_t stack_bytes) const;
    /// @}

    /** Hard cap on McuConfig::superblockMaxLen (and the span of the
     *  block-length statistics). */
    static constexpr unsigned superblockLenCap = 32;

    /** Superblock engine counters (not architectural state; they are
     *  neither snapshotted nor part of the determinism digest). */
    struct SuperblockStats
    {
        /** Blocks compiled, first builds and rebuilds together. */
        std::uint64_t blocksBuilt = 0;
        /** Rebuilds forced by a code-epoch bump (self-modifying
         *  store, brown-out poison, snapshot restore). */
        std::uint64_t rebuilds = 0;
        /** Block dispatches that retired at least one instruction. */
        std::uint64_t execs = 0;
        /** Instructions retired inside blocks (the hit-rate
         *  numerator; instrCount() is the denominator). */
        std::uint64_t blockInstrs = 0;
        /** Dispatches that exited early (MMIO operand, faulting
         *  access, or a store over live code). */
        std::uint64_t bailouts = 0;
        /** Dispatches rejected by the segment-fit or brown-out
         *  admissibility gates (fell back to step()). */
        std::uint64_t fallbacks = 0;
        /** Dispatch counts by retired block length. */
        std::array<std::uint64_t, superblockLenCap + 1> lengthCounts{};
    };

    const SuperblockStats &superblockStats() const { return sbStats_; }

    /** Monotonic code-cache generation; bumped by the write watch
     *  when a store lands on live predecoded code and by
     *  invalidateCodeCaches(). Exposed for tests. */
    std::uint64_t codeEpoch() const { return codeEpoch_; }

  private:
    /** Predecoded-instruction classes: how much of the cycle cost
     *  can be precomputed at decode time. */
    enum class InstrClass : std::uint8_t
    {
        Static, ///< Cost fully known at decode time.
        Store,  ///< STW/STB: +framWriteExtraCycles when EA is FRAM.
        Chkpt,  ///< CHKPT: cost depends on live stack depth.
    };

    /** One slot of the predecoded instruction cache. */
    struct CachedInstr
    {
        isa::Instr instr;
        /** Static cycle cost (includes memExtraCycles). */
        std::uint32_t cycles = 0;
        /** secondsFromTicks(cycles * cyclePeriod_), precomputed. */
        double dtSeconds = 0.0;
        InstrClass cls = InstrClass::Static;
    };

    /** One pre-resolved operation thunk of a superblock. */
    struct SbOp
    {
        isa::Instr instr;
        /** Static cycle cost (the non-FRAM cost for stores). */
        std::uint32_t cyc = 0;
        /** Store cost when the EA lands in FRAM; == cyc otherwise. */
        std::uint32_t framCyc = 0;
        /** Drain sub-step at `cyc` / at `framCyc`. */
        energy::PowerSystem::DrainStep step{};
        energy::PowerSystem::DrainStep framStep{};
    };

    /** A compiled straight-line region: thunks plus its precomputed
     *  worst-case drain schedule. Purely an execution-cache artifact;
     *  never snapshotted. */
    struct Superblock
    {
        mem::Addr base = 0;
        /** codeEpoch_ at (re)build time; stale => rebuild. */
        std::uint64_t epoch = 0;
        /** Upper bound on the block's total drain duration (every
         *  store charged its FRAM cost). */
        sim::Tick worstDt = 0;
        double worstSeconds = 0.0;
        /** Cached admission threshold for `worstSeconds` and the
         *  draw-epoch it was computed under (0 = never computed). */
        double admitVolts = 0.0;
        std::uint64_t drawStamp = 0;
        /** Consecutive dispatches that retired zero instructions;
         *  reset by any retiring dispatch. At sbZeroBailDemoteLimit
         *  the entry point is demoted to unbuildable (see
         *  tryRunBlock). */
        std::uint32_t zeroBails = 0;
        std::vector<SbOp> ops;
    };

    /** blockAt_ sentinels. */
    static constexpr std::int32_t sbNone = -1;
    static constexpr std::int32_t sbUnbuildable = -2;
    /** Consecutive zero-retire dispatches before an entry point is
     *  demoted to unbuildable (a leader whose effective address
     *  always resolves to MMIO makes every dispatch pure overhead).
     *  invalidateCodeCaches resets the verdict with the rest. */
    static constexpr std::uint32_t sbZeroBailDemoteLimit = 16;
    /** Total block budget (leaders are at most one per code word;
     *  this just bounds pathological self-modifying workloads). */
    static constexpr std::size_t sbMaxBlocks = 4096;

    void onPowerChange(bool on);
    void boot();
    void runSlice();
    /** Execute one instruction at local time `t`; advances `t`.
     *  @return false when the slice must end (power loss, halt,
     *  fault). */
    bool step(sim::Tick &t);
    /** Lazily size the predecode cache from the memory map and
     *  install the write watch that keeps it coherent. */
    void icacheEnsure();
    /** Drop every predecoded instruction (loadProgram, brown-out). */
    void icacheInvalidateAll();
    /** The one invalidation entry point shared by both decode tiers:
     *  drops every predecoded word and bumps the code epoch, which
     *  lazily invalidates every superblock. */
    void invalidateCodeCaches();
    /** Decode-time costing shared by step()'s fill path and the
     *  block builder. */
    void classifyCost(isa::Opcode op, unsigned &cyc,
                      InstrClass &cls) const;
    /** Superblock dispatch: build/validate/admit the block at pc_
     *  and run it. @return true when >= 1 instruction retired. */
    bool tryRunBlock(sim::Tick &t, sim::Tick seg_end);
    std::int32_t buildBlockAt(mem::Addr pc, std::size_t idx);
    bool buildInto(Superblock &b, mem::Addr pc);
    bool runBlock(sim::Tick &t, Superblock &b, std::size_t n_max);
    bool
    touchesMmio(mem::Addr ea) const
    {
        for (const auto &[mbase, mspan] : mmioRanges_) {
            if (ea - mbase < mspan)
                return true;
        }
        return false;
    }
    bool
    eaInFram(mem::Addr ea) const
    {
        for (const auto &[fbase, fspan] : framRanges_) {
            if (ea - fbase < fspan)
                return true;
        }
        return false;
    }
    void execute(const isa::Instr &instr, sim::Tick t);
    /** Feed the auditor's taint machine; runs on the pre-execute
     *  register file so effective addresses match the instruction
     *  about to commit. */
    void auditExec(const isa::Instr &instr);
    void raiseFault(McuFault cause);
    void enterIrq();
    void setFlagsFromCompare(std::uint32_t a, std::uint32_t b);

    bool doCheckpoint();
    /** Atomic commit: every word lands (pre-drained cost). */
    bool commitAtomic(mem::Addr base, std::uint32_t sp,
                      std::uint32_t stack_bytes,
                      std::uint32_t next_seq);
    /** Interruptible commit: per-word energy drain; can tear. */
    bool commitInterruptible(mem::Addr base, std::uint32_t sp,
                             std::uint32_t stack_bytes,
                             std::uint32_t next_seq);
    bool tryRestore();
    /** Does the frame in `slot` carry a valid seal? (Sealed scan.) */
    bool slotSealed(int slot, std::uint32_t &seq_out) const;
    /** CRC of the frame at `base` (runtime::ckfmt::frameCrc). */
    std::uint32_t frameCrcAt(mem::Addr base,
                             std::uint32_t stack_bytes,
                             std::uint32_t seq) const;
    unsigned checkpointCostCycles() const;

    /// Memory helpers that fault on error; return false on fault.
    bool memRead32(mem::Addr addr, std::uint32_t &value);
    bool memWrite32(mem::Addr addr, std::uint32_t value);
    bool memRead8(mem::Addr addr, std::uint8_t &value);
    bool memWrite8(mem::Addr addr, std::uint8_t value);

    sim::TimeCursor &cursor;
    mem::MemoryMap &mem_;
    energy::PowerSystem &power;
    McuConfig cfg;
    sim::Tick cyclePeriod_;

    energy::PowerSystem::LoadHandle coreLoad;

    std::array<std::uint32_t, isa::numRegs> regs{};
    mem::Addr pc_ = 0;
    isa::Flags flags_;
    McuState state_ = McuState::Off;
    McuFault fault_ = McuFault::None;
    mem::Addr entry = 0x4000;
    mem::Addr irqHandler = 0;

    bool irqLine = false;
    bool inIrq = false;
    bool chkptEnabled = false;
    /** Remaining cycles of a timed low-power wait (0 = awake). */
    std::uint64_t sleepCycles = 0;

    sim::EventId sliceEvent = sim::invalidEventId;
    sim::EventId bootEvent = sim::invalidEventId;
    /** Due times of the pending events (snapshot save). */
    sim::Tick sliceDueAt = 0;
    sim::Tick bootDueAt = 0;

    mem::NvAuditor *audit_ = nullptr;
    mem::NvRegion *nv_ = nullptr;
    NvCommitHooks nvHooks_;
    /** Ticks spent inside the current interruptible commit, folded
     *  back into the slice clock by step() after execute(). */
    sim::Tick commitExtraTicks_ = 0;
    std::uint64_t tornCommits_ = 0;

    /** Predecoded instruction cache, indexed by (pc - icacheBase)/4.
     *  Validity lives in a separate byte vector so wholesale
     *  invalidation is a cheap fill. */
    std::vector<CachedInstr> icache_;
    std::vector<std::uint8_t> icacheValid_;
    mem::Addr icacheBase_ = 0;
    bool icacheReady_ = false;
    /** (base, span) of each FRAM region, snapshotted with the icache
     *  so store costing can skip the memory-map lookup. */
    std::vector<std::pair<mem::Addr, mem::Addr>> framRanges_;
    /** (base, span) of each MMIO region: block thunks bail *before*
     *  any access that would land here. */
    std::vector<std::pair<mem::Addr, mem::Addr>> mmioRanges_;
    /** Cached power integration sub-step ceiling. */
    sim::Tick powerMaxStep_ = 0;

    /** Superblock cache: per-leader-word index into blocks_ (or a
     *  sentinel), parallel to icache_. */
    std::vector<std::int32_t> blockAt_;
    std::vector<Superblock> blocks_;
    /** Code-cache generation. The memory map's write watch holds a
     *  pointer to this and bumps it whenever a routed store clears a
     *  live valid byte — the same event that invalidates a
     *  predecoded word, so both tiers ride one mechanism. Starts at
     *  1 so a default-constructed Superblock (epoch 0) is stale. */
    std::uint64_t codeEpoch_ = 1;
    /** All non-reference fast-path flags required by the block tier,
     *  resolved once at construction. */
    bool sbEnabled_ = false;
    /** Worst-case duration of a full-length block, for the gate that
     *  stops block *building* near the brown-out threshold. */
    double sbBuildGateSeconds_ = 0.0;
    SuperblockStats sbStats_;

    ResetHook resetHook;
    Tracer tracer;
    const void *tracerOwner_ = nullptr;

    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    std::uint64_t reboots = 0;
    std::uint64_t faults = 0;
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t checkpointsRestored = 0;
};

} // namespace edb::mcu

#endif // EDB_MCU_MCU_HH
