/**
 * @file
 * The EH32 MCU core: interpreter, power behaviour, checkpoint unit.
 *
 * This is the execution substrate for the intermittent model of the
 * paper (Section 2): the core draws supply current per cycle while
 * running; when the power system browns out, the core stops wherever
 * it happens to be (losing the in-flight instruction), volatile state
 * is destroyed, and the next turn-on reboots from the entry point —
 * or from a hardware checkpoint when the Mementos/QuickRecall-style
 * checkpoint unit is enabled.
 */

#ifndef EDB_MCU_MCU_HH
#define EDB_MCU_MCU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "energy/power_system.hh"
#include "isa/isa.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::mem {
class NvAuditor;
} // namespace edb::mem

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::mcu {

/** Static configuration of the MCU core. */
struct McuConfig
{
    /** Core clock (WISP 5 runs its MSP430 around 4 MHz). */
    double clockHz = 4e6;
    /** Supply current while executing (paper: ~0.5 mA at 4 MHz). */
    double activeAmps = 0.5e-3;
    /** Supply current when halted (deep sleep). */
    double haltAmps = 50e-6;
    /** Supply current during a timed low-power wait (LPM sleep). */
    double sleepAmps = 2e-6;
    /** Extra cycles for any data-memory access. */
    unsigned memExtraCycles = 1;
    /** Additional wait-state cycles for FRAM writes. */
    unsigned framWriteExtraCycles = 2;
    /** Cycles consumed entering the debug interrupt handler. */
    unsigned irqEntryCycles = 6;
    /** Reset / power-management settle time after turn-on. */
    sim::Tick bootDelay = 100 * sim::oneUs;
    /** Max instructions-slice length per event. */
    sim::Tick sliceQuantum = 100 * sim::oneUs;

    /// @name Fast-path execution (default on)
    /// Each mechanism is bit-identical to the reference path — same
    /// instruction stream, same power sub-step sequence, same RNG
    /// draws. The flags exist so the determinism suite can diff the
    /// fast and reference paths instruction-for-instruction.
    /// @{
    /** Predecoded instruction cache indexed by PC: decode each code
     *  word once, invalidated on writes into the cached range and on
     *  loadProgram / brown-out. */
    bool predecodeCache = true;
    /** Last-hit region cache in the memory map (flat dispatch). */
    bool flatDispatch = true;
    /** Drain per-instruction energy through the single-sub-step
     *  PowerSystem::drainStep entry instead of the general
     *  advanceTo path. */
    bool batchedDrain = true;
    /** Amortize the event-queue peek over slice segments: re-read
     *  sim().nextEventTime() only after an instruction that could
     *  have scheduled an event (MMIO access, tracer). */
    bool batchedSlices = true;
    /// @}

    /** Hardware checkpoint unit enable (restore-on-boot). */
    bool checkpointingEnabled = false;
    /** FRAM base of the two checkpoint slots. */
    mem::Addr checkpointBase = 0xE000;
    /** Bytes per checkpoint slot (two slots used). */
    mem::Addr checkpointSlotSize = 0x800;
    /** Initial stack pointer / top bound of checkpointed stack. */
    mem::Addr stackTop = 0x4000;
};

/** Lifecycle state of the core. */
enum class McuState : std::uint8_t
{
    Off,     ///< Below brown-out; no execution.
    Booting, ///< Powered, waiting out the reset delay.
    Running, ///< Executing instructions.
    Halted,  ///< HALT executed; low-power until reboot.
    Faulted, ///< Undefined behaviour hit; dead until reboot.
};

/** Cause of a fault. */
enum class McuFault : std::uint8_t
{
    None,
    IllegalInstr, ///< Undecodable opcode reached.
    BusError,     ///< Access to an unmapped address (wild pointer).
    Misaligned,   ///< Unaligned word access.
};

/** Human-readable state / fault names. */
const char *mcuStateName(McuState state);
const char *mcuFaultName(McuFault fault);

/**
 * EH32 interpreter bound to a memory map and a power system.
 */
class Mcu : public sim::Component
{
  public:
    /** Reset hook: invoked on every reboot (peripheral reset). */
    using ResetHook = std::function<void()>;
    /** Instruction tracer: (pc, decoded instruction). */
    using Tracer = std::function<void(mem::Addr, const isa::Instr &)>;

    Mcu(sim::Simulator &simulator, std::string component_name,
        sim::TimeCursor &cursor, mem::MemoryMap &memory,
        energy::PowerSystem &power, McuConfig config = {});

    ~Mcu() override;

    /// @name Program loading
    /// @{
    /** Flash a program image into memory and set vectors. */
    void loadProgram(const isa::Program &program);
    void setEntry(mem::Addr addr) { entry = addr; }
    void setIrqHandler(mem::Addr addr) { irqHandler = addr; }
    mem::Addr entryPoint() const { return entry; }
    /// @}

    /// @name Core state
    /// @{
    McuState state() const { return state_; }
    McuFault fault() const { return fault_; }
    mem::Addr pc() const { return pc_; }
    std::uint32_t reg(unsigned index) const { return regs.at(index); }
    void setReg(unsigned index, std::uint32_t v) { regs.at(index) = v; }
    const isa::Flags &flags() const { return flags_; }
    /// @}

    /// @name Statistics
    /// @{
    std::uint64_t cycleCount() const { return cycles; }
    std::uint64_t instrCount() const { return instrs; }
    std::uint64_t rebootCount() const { return reboots; }
    std::uint64_t faultCount() const { return faults; }
    std::uint64_t checkpointCount() const { return checkpointsTaken; }
    std::uint64_t restoreCount() const { return checkpointsRestored; }
    /// @}

    /// @name Debug interrupt (EDB's "Interrupt" line, paper Fig 5)
    /// @{
    void raiseDebugIrq() { irqLine = true; }
    void clearDebugIrq() { irqLine = false; }
    bool inDebugIrq() const { return inIrq; }
    /// @}

    /** Peripheral/board reset hook called on each reboot. */
    void setResetHook(ResetHook hook) { resetHook = std::move(hook); }

    /** Optional instruction tracer (tests, debugging). */
    void setTracer(Tracer t) { tracer = std::move(t); }

    /**
     * Attach the NV consistency auditor (nullptr detaches). The core
     * drives its register-taint machine and lifecycle hooks; the
     * owner must also install `mem::NvAuditor::rawWriteHook` on the
     * memory map so erasing writes are seen regardless of source.
     */
    void setAuditor(mem::NvAuditor *auditor) { audit_ = auditor; }
    mem::NvAuditor *auditor() const { return audit_; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

    /** Live checkpoint-unit enable (also via MMIO chkptCtl). */
    void setCheckpointingEnabled(bool on) { chkptEnabled = on; }
    bool checkpointingEnabled() const { return chkptEnabled; }

    /** True while in a timed low-power wait (see mmio::sleep). */
    bool sleeping() const { return sleepCycles > 0; }

    /** Zero out both checkpoint slots (done at program load). */
    void invalidateCheckpoints();

    /** Install the cycle counter and checkpoint-control registers. */
    void installMmio(mem::MmioRegion &mmio);

    /// @name Instrument access (not the debugger protocol path)
    /// @{
    std::uint32_t debugRead32(mem::Addr addr) const;
    void debugWrite32(mem::Addr addr, std::uint32_t value);
    /// @}

    const McuConfig &config() const { return cfg; }

    /** Tick duration of one core clock cycle. */
    sim::Tick cyclePeriod() const { return cyclePeriod_; }

  private:
    /** Predecoded-instruction classes: how much of the cycle cost
     *  can be precomputed at decode time. */
    enum class InstrClass : std::uint8_t
    {
        Static, ///< Cost fully known at decode time.
        Store,  ///< STW/STB: +framWriteExtraCycles when EA is FRAM.
        Chkpt,  ///< CHKPT: cost depends on live stack depth.
    };

    /** One slot of the predecoded instruction cache. */
    struct CachedInstr
    {
        isa::Instr instr;
        /** Static cycle cost (includes memExtraCycles). */
        std::uint32_t cycles = 0;
        /** secondsFromTicks(cycles * cyclePeriod_), precomputed. */
        double dtSeconds = 0.0;
        InstrClass cls = InstrClass::Static;
    };

    void onPowerChange(bool on);
    void boot();
    void runSlice();
    /** Execute one instruction at local time `t`; advances `t`.
     *  @return false when the slice must end (power loss, halt,
     *  fault). */
    bool step(sim::Tick &t);
    /** Lazily size the predecode cache from the memory map and
     *  install the write watch that keeps it coherent. */
    void icacheEnsure();
    /** Drop every predecoded instruction (loadProgram, brown-out). */
    void icacheInvalidateAll();
    void execute(const isa::Instr &instr, sim::Tick t);
    /** Feed the auditor's taint machine; runs on the pre-execute
     *  register file so effective addresses match the instruction
     *  about to commit. */
    void auditExec(const isa::Instr &instr);
    void raiseFault(McuFault cause);
    void enterIrq();
    void setFlagsFromCompare(std::uint32_t a, std::uint32_t b);

    bool doCheckpoint();
    bool tryRestore();
    unsigned checkpointCostCycles() const;

    /// Memory helpers that fault on error; return false on fault.
    bool memRead32(mem::Addr addr, std::uint32_t &value);
    bool memWrite32(mem::Addr addr, std::uint32_t value);
    bool memRead8(mem::Addr addr, std::uint8_t &value);
    bool memWrite8(mem::Addr addr, std::uint8_t value);

    sim::TimeCursor &cursor;
    mem::MemoryMap &mem_;
    energy::PowerSystem &power;
    McuConfig cfg;
    sim::Tick cyclePeriod_;

    energy::PowerSystem::LoadHandle coreLoad;

    std::array<std::uint32_t, isa::numRegs> regs{};
    mem::Addr pc_ = 0;
    isa::Flags flags_;
    McuState state_ = McuState::Off;
    McuFault fault_ = McuFault::None;
    mem::Addr entry = 0x4000;
    mem::Addr irqHandler = 0;

    bool irqLine = false;
    bool inIrq = false;
    bool chkptEnabled = false;
    /** Remaining cycles of a timed low-power wait (0 = awake). */
    std::uint64_t sleepCycles = 0;

    sim::EventId sliceEvent = sim::invalidEventId;
    sim::EventId bootEvent = sim::invalidEventId;
    /** Due times of the pending events (snapshot save). */
    sim::Tick sliceDueAt = 0;
    sim::Tick bootDueAt = 0;

    mem::NvAuditor *audit_ = nullptr;

    /** Predecoded instruction cache, indexed by (pc - icacheBase)/4.
     *  Validity lives in a separate byte vector so wholesale
     *  invalidation is a cheap fill. */
    std::vector<CachedInstr> icache_;
    std::vector<std::uint8_t> icacheValid_;
    mem::Addr icacheBase_ = 0;
    bool icacheReady_ = false;
    /** (base, span) of each FRAM region, snapshotted with the icache
     *  so store costing can skip the memory-map lookup. */
    std::vector<std::pair<mem::Addr, mem::Addr>> framRanges_;
    /** Cached power integration sub-step ceiling. */
    sim::Tick powerMaxStep_ = 0;

    ResetHook resetHook;
    Tracer tracer;

    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    std::uint64_t reboots = 0;
    std::uint64_t faults = 0;
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t checkpointsRestored = 0;
};

} // namespace edb::mcu

#endif // EDB_MCU_MCU_HH
