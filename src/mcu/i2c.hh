/**
 * @file
 * I2C master controller and device interface.
 *
 * The activity-recognition case study (paper Section 5.3.3) samples
 * an accelerometer over I2C; EDB passively monitors the bus
 * (Section 4.1.2 lists I2C SCL/SDA among the monitored lines).
 * Transactions take real bus time and draw extra supply current.
 */

#ifndef EDB_MCU_I2C_HH
#define EDB_MCU_I2C_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "energy/power_system.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::mcu {

/** A slave device on the I2C bus. */
class I2cDevice
{
  public:
    virtual ~I2cDevice() = default;

    /** 7-bit bus address. */
    virtual std::uint8_t address() const = 0;

    /** Register read. */
    virtual std::uint8_t readReg(std::uint8_t reg) = 0;

    /** Register write. */
    virtual void writeReg(std::uint8_t reg, std::uint8_t value) = 0;
};

/** Configuration of the I2C master. */
struct I2cConfig
{
    double clockHz = 400e3;
    /** Wire bytes per register transaction (addr, reg, data + acks). */
    double bytesPerTransaction = 4.0;
    /** Extra supply current while a transaction is on the bus. */
    double busActiveAmps = 0.5e-3;
};

/**
 * Register-transaction I2C master with a passive sniffer interface.
 */
class I2cController : public sim::Component
{
  public:
    /** Sniffer: (device address, register, value, is_read, when). */
    using Sniffer = std::function<void(std::uint8_t, std::uint8_t,
                                       std::uint8_t, bool, sim::Tick)>;

    I2cController(sim::Simulator &simulator, std::string component_name,
                  sim::TimeCursor &cursor, energy::PowerSystem &power,
                  I2cConfig config = {});

    /** Install ADDR/REG/DATA/CTRL/STATUS registers. */
    void installMmio(mem::MmioRegion &mmio);

    /** Attach a slave device (non-owning). */
    void attach(I2cDevice *device);

    /** Observe transactions on the wire (EDB's I/O monitor). */
    void addSniffer(Sniffer sniffer);

    /** True while a transaction is in flight. */
    bool busy() const { return inFlight; }

    /** Abort any transaction (reboot). */
    void powerLost();

    /** Duration of one register transaction on the wire. */
    sim::Tick transactionTime() const;

    /// @name Snapshot support (see sim/snapshot.hh)
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    void start(bool is_read);
    void finish();
    I2cDevice *findDevice(std::uint8_t addr) const;

    sim::TimeCursor &cursor;
    energy::PowerSystem &power;
    I2cConfig cfg;
    energy::PowerSystem::LoadHandle busLoad;
    std::vector<I2cDevice *> devices;
    std::vector<Sniffer> sniffers;

    std::uint8_t curAddr = 0;
    std::uint8_t curReg = 0;
    std::uint8_t curData = 0;
    bool curIsRead = false;
    bool inFlight = false;
    bool done = false;
    sim::EventId busEvent = sim::invalidEventId;
    sim::Tick busDueAt = 0;
};

} // namespace edb::mcu

#endif // EDB_MCU_I2C_HH
