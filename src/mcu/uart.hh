/**
 * @file
 * UART peripheral with bit timing and transmit energy cost.
 *
 * Powering and clocking a UART to stream a log is one of the
 * energy-interfering instrumentation strategies the paper quantifies
 * (Table 4: "UART printf" lowers the iteration success rate from 87%
 * to 74%). The model charges an extra supply current while the
 * shifter is active and makes the transmit take real bus time.
 */

#ifndef EDB_MCU_UART_HH
#define EDB_MCU_UART_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "energy/power_system.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::mcu {

/** Configuration of a UART instance. */
struct UartConfig
{
    double baud = 115200.0;
    /**
     * Extra supply current while the transmitter is shifting. The
     * console-UART default includes driving the input stage of a
     * non-isolated off-the-shelf USB-to-serial adapter, which the
     * paper (Section 2.2) notes "permit[s] energy to flow into or
     * out of the device".
     */
    double txActiveAmps = 2.2e-3;
    /** Bits per byte on the wire (start + 8 data + stop). */
    double bitsPerByte = 10.0;
    /** Receive FIFO depth; overflow drops the oldest byte. */
    std::size_t rxFifoDepth = 16;
};

/**
 * Target-side UART. The "wire" is exposed through listeners (for the
 * host / EDB's I/O sniffer) and `receiveByte` (for inbound traffic).
 */
class Uart : public sim::Component
{
  public:
    /** Byte completed on the TX wire at `when`. */
    using TxListener = std::function<void(std::uint8_t, sim::Tick)>;

    Uart(sim::Simulator &simulator, std::string component_name,
         sim::TimeCursor &cursor, energy::PowerSystem &power,
         UartConfig config = {});

    /**
     * Install TX / STATUS / RX registers.
     * @param tx_addr Transmit register address.
     * @param status_addr Status register (bit0 txBusy, bit1 rxAvail).
     * @param rx_addr Receive register address.
     */
    void installMmio(mem::MmioRegion &mmio, mem::Addr tx_addr,
                     mem::Addr status_addr, mem::Addr rx_addr);

    /** Observe completed TX bytes on the wire. */
    void addTxListener(TxListener listener);

    /** Deliver a byte from the wire into the RX FIFO. */
    void receiveByte(std::uint8_t byte);

    /** True while a byte is shifting out. */
    bool txBusy() const { return busy; }

    /** Bytes waiting in the RX FIFO. */
    std::size_t rxAvailable() const { return rxFifo.size(); }

    /** Wire time of one byte. */
    sim::Tick byteTime() const;

    /** Abort any in-flight byte and clear FIFOs (reboot). */
    void powerLost();

    /// @name Snapshot support (see sim/snapshot.hh)
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    void startTx(std::uint8_t byte);
    void finishTx();

    sim::TimeCursor &cursor;
    energy::PowerSystem &power;
    UartConfig cfg;
    energy::PowerSystem::LoadHandle txLoad;
    std::deque<std::uint8_t> rxFifo;
    std::vector<TxListener> txListeners;
    bool busy = false;
    std::uint8_t shifting = 0;
    sim::EventId txEvent = sim::invalidEventId;
    sim::Tick txDueAt = 0;
    std::uint64_t txCount = 0;
    std::uint64_t txDropped = 0;

  public:
    /** Bytes successfully transmitted. */
    std::uint64_t transmittedBytes() const { return txCount; }
    /** Bytes written while busy (dropped). */
    std::uint64_t droppedBytes() const { return txDropped; }
};

} // namespace edb::mcu

#endif // EDB_MCU_UART_HH
