#include "mcu/mcu.hh"

#include <algorithm>

#include "mcu/mmio_map.hh"
#include "mem/nv_audit.hh"
#include "mem/nv_region.hh"
#include "runtime/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

namespace {

/** Checkpoint slot field offsets (bytes); the canonical frame format
 *  lives in runtime/checkpoint.hh and is shared with the auditor and
 *  the tests. */
constexpr mem::Addr ckMagicOff = runtime::ckfmt::magicOff;
constexpr mem::Addr ckSeqOff = runtime::ckfmt::seqOff;
constexpr mem::Addr ckPcOff = runtime::ckfmt::pcOff;
constexpr mem::Addr ckFlagsOff = runtime::ckfmt::flagsOff;
constexpr mem::Addr ckSpOff = runtime::ckfmt::spOff;
constexpr mem::Addr ckStackLenOff = runtime::ckfmt::stackLenOff;
constexpr mem::Addr ckRegsOff = runtime::ckfmt::regsOff;
constexpr mem::Addr ckStackOff = runtime::ckfmt::stackOff;
constexpr std::uint32_t ckMagic = runtime::ckfmt::magic;

} // namespace

const char *
mcuStateName(McuState state)
{
    switch (state) {
      case McuState::Off: return "off";
      case McuState::Booting: return "booting";
      case McuState::Running: return "running";
      case McuState::Halted: return "halted";
      case McuState::Faulted: return "faulted";
    }
    return "unknown";
}

const char *
mcuFaultName(McuFault fault)
{
    switch (fault) {
      case McuFault::None: return "none";
      case McuFault::IllegalInstr: return "illegal-instruction";
      case McuFault::BusError: return "bus-error";
      case McuFault::Misaligned: return "misaligned";
    }
    return "unknown";
}

Mcu::Mcu(sim::Simulator &simulator, std::string component_name,
         sim::TimeCursor &time_cursor, mem::MemoryMap &memory,
         energy::PowerSystem &power_sys, McuConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      mem_(memory),
      power(power_sys),
      cfg(config)
{
    cyclePeriod_ = sim::ticksFromSeconds(1.0 / cfg.clockHz);
    chkptEnabled = cfg.checkpointingEnabled;
    coreLoad = power.addLoad(name() + ".core", cfg.activeAmps, false);
    power.addPowerListener([this](bool on) { onPowerChange(on); });
    powerMaxStep_ = power.config().maxStep;
    mem_.setFindCacheEnabled(cfg.flatDispatch);
    if (cfg.superblockMaxLen > superblockLenCap)
        cfg.superblockMaxLen = superblockLenCap;
    if (cfg.superblockMinLen < 1)
        cfg.superblockMinLen = 1;
    // The block tier leans on all three underlying fast paths: the
    // predecode cache (decode + costing + the write watch), batched
    // drain (aligned lastUpdate ticks) and batched slices (the
    // segment bounds that cap a block's drain horizon).
    sbEnabled_ = cfg.superblocks && cfg.predecodeCache &&
                 cfg.batchedDrain && cfg.batchedSlices;
    // Build-gate horizon: a full-length block of worst-typical (4
    // cycle) instructions. Heuristic only — dispatch admissibility
    // always uses the candidate block's exact worst case.
    sbBuildGateSeconds_ = sim::secondsFromTicks(
        static_cast<sim::Tick>(cfg.superblockMaxLen) * 4 *
        cyclePeriod_);
}

Mcu::~Mcu()
{
    // The write watch closes over `this`; drop it before the map can
    // outlive the core.
    if (icacheReady_)
        mem_.clearWriteWatch();
}

void
Mcu::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::cycleLo, name() + ".cycleLo",
        [this] { return static_cast<std::uint32_t>(cycles); }, nullptr);
    mmio.addRegister(
        mmio::cycleHi, name() + ".cycleHi",
        [this] { return static_cast<std::uint32_t>(cycles >> 32); },
        nullptr);
    mmio.addRegister(
        mmio::chkptCtl, name() + ".chkptCtl",
        [this] { return chkptEnabled ? 1u : 0u; },
        [this](std::uint32_t v) { chkptEnabled = v & 1u; });
    mmio.addRegister(
        mmio::sleep, name() + ".sleep",
        [this] {
            return static_cast<std::uint32_t>(sleepCycles);
        },
        [this](std::uint32_t v) {
            sleepCycles = v;
            if (sleepCycles > 0)
                power.setLoadCurrent(coreLoad, cfg.sleepAmps);
        });
}

void
Mcu::loadProgram(const isa::Program &program)
{
    // Bulk-copy each segment straight into the backing store of the
    // region(s) it lands in. Flashing is not a program store: it
    // must neither pollute the wear statistics nor cost O(bytes)
    // routed byte writes.
    for (const auto &seg : program.segments) {
        std::size_t off = 0;
        while (off < seg.bytes.size()) {
            mem::Addr addr = seg.base + static_cast<mem::Addr>(off);
            mem::Region *region = mem_.find(addr);
            if (!region) {
                sim::fatal("Mcu::loadProgram: address ", addr,
                           " is not mapped");
            }
            std::size_t room = region->base() + region->size() - addr;
            std::size_t chunk =
                std::min(seg.bytes.size() - off, room);
            if (auto *ram = dynamic_cast<mem::Ram *>(region)) {
                ram->load(addr, seg.bytes.data() + off, chunk);
            } else {
                for (std::size_t i = 0; i < chunk; ++i)
                    mem_.write8(addr + static_cast<mem::Addr>(i),
                                seg.bytes[off + i]);
            }
            off += chunk;
        }
    }
    entry = program.entry;
    irqHandler = program.irqHandler;
    chkptEnabled = cfg.checkpointingEnabled;
    invalidateCodeCaches();
    invalidateCheckpoints();
    if (audit_)
        audit_->reset();
}

void
Mcu::icacheEnsure()
{
    icacheReady_ = true;
    mem::Addr lo = ~mem::Addr{0};
    mem::Addr hi = 0;
    framRanges_.clear();
    mmioRanges_.clear();
    for (auto *region : mem_.regions()) {
        if (region->kind() == mem::RegionKind::Fram)
            framRanges_.emplace_back(region->base(), region->size());
        if (region->kind() == mem::RegionKind::Mmio) {
            mmioRanges_.emplace_back(region->base(), region->size());
            continue;
        }
        lo = std::min(lo, region->base());
        hi = std::max(hi, region->base() + region->size());
    }
    if (lo >= hi) {
        icache_.clear();
        icacheValid_.clear();
        blockAt_.clear();
        blocks_.clear();
        return;
    }
    lo &= ~mem::Addr{3};
    icacheBase_ = lo;
    icache_.assign((hi - lo) / 4, {});
    icacheValid_.assign(icache_.size(), 0);
    blockAt_.assign(icache_.size(), sbNone);
    blocks_.clear();
    // Any routed store into the cached span drops the covering word
    // (the map clears the valid byte directly) and, when that word
    // was live predecoded state, bumps the code epoch that keys the
    // superblock cache. Bulk mutations that bypass the map
    // (Ram::load, SRAM poison) are handled by the explicit
    // invalidateCodeCaches calls in loadProgram and onPowerChange.
    mem_.setWriteWatch(lo, hi, icacheValid_.data(), &codeEpoch_);
}

void
Mcu::icacheInvalidateAll()
{
    if (!icacheValid_.empty())
        std::fill(icacheValid_.begin(), icacheValid_.end(),
                  std::uint8_t{0});
}

void
Mcu::invalidateCodeCaches()
{
    // Both decode tiers invalidate through this one helper: the
    // predecode cache by clearing every valid byte, the superblocks
    // lazily by the epoch bump (each block re-verifies its epoch at
    // dispatch and recompiles from current memory when stale).
    icacheInvalidateAll();
    ++codeEpoch_;
    // "Unbuildable" leader verdicts were reached against the old
    // code image; give those words a fresh chance.
    if (!blockAt_.empty())
        std::replace(blockAt_.begin(), blockAt_.end(), sbUnbuildable,
                     sbNone);
}

void
Mcu::classifyCost(isa::Opcode op, unsigned &cyc, InstrClass &cls) const
{
    cyc = isa::baseCycles(op);
    cls = InstrClass::Static;
    switch (op) {
      case isa::Opcode::Ldw:
      case isa::Opcode::Ldb:
      case isa::Opcode::Push:
      case isa::Opcode::Pop:
      case isa::Opcode::Call:
      case isa::Opcode::Callr:
      case isa::Opcode::Ret:
      case isa::Opcode::Reti:
        cyc += cfg.memExtraCycles;
        break;
      case isa::Opcode::Stw:
      case isa::Opcode::Stb:
        cyc += cfg.memExtraCycles;
        cls = InstrClass::Store;
        break;
      case isa::Opcode::Chkpt:
        cls = InstrClass::Chkpt;
        break;
      default:
        break;
    }
}

void
Mcu::invalidateCheckpoints()
{
    for (int slot = 0; slot < 2; ++slot) {
        mem::Addr base =
            cfg.checkpointBase + slot * cfg.checkpointSlotSize;
        mem_.write32(base + ckMagicOff, 0);
        mem_.write32(base + ckSeqOff, 0);
    }
}

void
Mcu::setNvRegion(mem::NvRegion *region)
{
    nv_ = region;
    if (nv_ && nv_->active()) {
        // Batched block execution skips per-write hooks; an active NV
        // backend (energy/wear modelling) must see every write, so
        // force the per-instruction path. (With the code region's
        // direct store unpublished, blocks could never build anyway.)
        sbEnabled_ = false;
    }
}

void
Mcu::onPowerChange(bool on)
{
    if (on) {
        state_ = McuState::Booting;
        power.setLoadCurrent(coreLoad, cfg.activeAmps);
        power.setLoadEnabled(coreLoad, true);
        bootDueAt = cursor.now() + cfg.bootDelay;
        bootEvent = cursor.scheduleIn(cfg.bootDelay, [this] { boot(); });
        return;
    }
    // Brown-out: volatile state is lost; the board reset hook poisons
    // SRAM and resets peripherals.
    if (audit_ && state_ != McuState::Off)
        audit_->onPowerLoss(cursor.now());
    state_ = McuState::Off;
    fault_ = McuFault::None;
    inIrq = false;
    sleepCycles = 0;
    if (sliceEvent != sim::invalidEventId) {
        sim().cancel(sliceEvent);
        sliceEvent = sim::invalidEventId;
    }
    if (bootEvent != sim::invalidEventId) {
        sim().cancel(bootEvent);
        bootEvent = sim::invalidEventId;
    }
    power.setLoadEnabled(coreLoad, false);
    // The reset hook poisons SRAM behind the map's back; any
    // predecoded instruction (and any superblock) may now be stale.
    invalidateCodeCaches();
    if (resetHook)
        resetHook();
}

void
Mcu::boot()
{
    bootEvent = sim::invalidEventId;
    if (state_ != McuState::Booting)
        return;
    regs.fill(0);
    flags_ = isa::Flags{};
    fault_ = McuFault::None;
    inIrq = false;
    sleepCycles = 0;
    regs[isa::regSp] = cfg.stackTop;
    pc_ = entry;
    state_ = McuState::Running;
    ++reboots;
    if (audit_)
        audit_->onBoot(cursor.now());
    power.setLoadCurrent(coreLoad, cfg.activeAmps);
    power.setLoadEnabled(coreLoad, true);
    if (chkptEnabled)
        tryRestore();
    sliceDueAt = cursor.now();
    sliceEvent = sim().schedule(sliceDueAt, [this] { runSlice(); });
}

void
Mcu::runSlice()
{
    sliceEvent = sim::invalidEventId;
    if (state_ != McuState::Running)
        return;
    sim::Tick t = std::max(now(), cursor.now());
    sim::Tick end = t + cfg.sliceQuantum;
    if (!cfg.batchedSlices) {
        // Reference path: peek the event queue before every
        // instruction.
        while (state_ == McuState::Running && t < end) {
            if (sim().nextEventTime() <= t)
                break;
            if (!step(t))
                break;
        }
    } else {
        // Segment-amortized path: the next-event time can only move
        // when an event is scheduled or cancelled, and during a
        // slice only MMIO-touching instructions, the tracer, or a
        // power transition (which ends the slice anyway) can do
        // that. So read it once per segment and re-read only after
        // such an instruction. Instruction-for-instruction identical
        // to the reference path.
        const bool traced = static_cast<bool>(tracer);
        // The superblock tier needs every per-instruction observer
        // quiet: a tracer or auditor must see each instruction, so
        // their presence drops execution to the step() path.
        const bool sb_ok = sbEnabled_ && !traced && !audit_;
        while (state_ == McuState::Running && t < end) {
            sim::Tick next_evt = sim().nextEventTime();
            if (next_evt <= t)
                break;
            const sim::Tick seg_end = std::min(end, next_evt);
            bool live = true;
            mem_.clearMmioTouched();
            while (state_ == McuState::Running && t < seg_end) {
                if (sb_ok && tryRunBlock(t, seg_end))
                    continue; // blocks never touch MMIO or events
                if (!step(t)) {
                    live = false;
                    break;
                }
                if (mem_.mmioTouched() || traced)
                    break; // resync with the event queue
            }
            if (!live)
                break;
        }
    }
    if (state_ == McuState::Running) {
        sliceDueAt = t;
        sliceEvent = sim().schedule(t, [this] { runSlice(); });
    }
}

bool
Mcu::step(sim::Tick &t)
{
    // Timed low-power wait: consume the remaining sleep budget in
    // bounded chunks (so queued events interleave at their proper
    // times) at the sleep current. A debug interrupt wakes early.
    if (sleepCycles > 0) {
        if (irqLine && irqHandler != 0) {
            sleepCycles = 0;
        } else {
            std::uint64_t chunk = std::min<std::uint64_t>(
                sleepCycles, 200); // 50 us at 4 MHz
            sim::Tick dt =
                static_cast<sim::Tick>(chunk) * cyclePeriod_;
            power.advanceTo(t + dt);
            if (state_ != McuState::Running)
                return false;
            cursor.advance(t + dt);
            cycles += chunk;
            t += dt;
            sleepCycles -= chunk;
        }
        if (sleepCycles == 0)
            power.setLoadCurrent(coreLoad, cfg.activeAmps);
        return true;
    }

    // Fetch: hit the predecode cache, else fetch + decode + classify
    // and (when the PC is cacheable) remember the result.
    const isa::Instr *ip = nullptr;
    unsigned cyc = 0;
    double dt_sec = 0.0;
    bool have_dt_sec = false;
    InstrClass cls = InstrClass::Static;
    std::size_t idx = 0;
    bool cacheable = false;
    if (cfg.predecodeCache) {
        if (!icacheReady_)
            icacheEnsure();
        if (!(pc_ & 3u) && pc_ >= icacheBase_) {
            idx = (pc_ - icacheBase_) >> 2;
            if (idx < icache_.size()) {
                cacheable = true;
                if (icacheValid_[idx]) {
                    const CachedInstr &entry = icache_[idx];
                    ip = &entry.instr;
                    cyc = entry.cycles;
                    cls = entry.cls;
                    dt_sec = entry.dtSeconds;
                    have_dt_sec = true;
                }
            }
        }
    }
    isa::Instr fetched;
    if (!ip) {
        std::uint32_t word;
        if (!memRead32(pc_, word))
            return false;
        auto decoded = isa::decode(word);
        if (!decoded) {
            raiseFault(McuFault::IllegalInstr);
            return false;
        }
        fetched = *decoded;
        ip = &fetched;
        classifyCost(fetched.op, cyc, cls);
        if (cacheable) {
            // Never cache instruction words read from MMIO: those
            // reads have side effects and must stay on the slow
            // path.
            mem::Region *region = mem_.find(pc_);
            if (region && region->kind() != mem::RegionKind::Mmio) {
                icache_[idx] = CachedInstr{
                    fetched, cyc,
                    sim::secondsFromTicks(
                        static_cast<sim::Tick>(cyc) * cyclePeriod_),
                    cls};
                icacheValid_[idx] = 1;
            }
        }
    }
    const isa::Instr &instr = *ip;

    // Dynamic cost components (same order of operations as the
    // reference cost switch).
    if (cls == InstrClass::Store) {
        mem::Addr ea = regs[instr.rs] +
                       static_cast<std::uint32_t>(instr.imm);
        bool fram = false;
        if (icacheReady_) {
            // Exact per-region ranges (gaps stay non-FRAM), so this
            // matches the map lookup for every address.
            for (const auto &[fbase, fspan] : framRanges_) {
                if (ea - fbase < fspan) {
                    fram = true;
                    break;
                }
            }
        } else {
            mem::Region *region = mem_.find(ea);
            fram = region && region->kind() == mem::RegionKind::Fram;
        }
        if (fram) {
            cyc += cfg.framWriteExtraCycles;
            have_dt_sec = false;
        }
    } else if (cls == InstrClass::Chkpt) {
        if (chkptEnabled && !cfg.interruptibleCommit) {
            // Atomic commit: the whole checkpoint cost is drained
            // before the burst, so the commit can never tear. The
            // interruptible path keeps the base cost here and drains
            // word by word inside doCheckpoint().
            cyc = checkpointCostCycles();
            have_dt_sec = false;
        }
    }

    // Drain the supply across the instruction; a brown-out mid
    // instruction kills it before it commits.
    sim::Tick dt = static_cast<sim::Tick>(cyc) * cyclePeriod_;
    if (cfg.batchedDrain && dt <= powerMaxStep_ &&
        power.lastUpdateTick() == t) {
        if (!have_dt_sec)
            dt_sec = sim::secondsFromTicks(dt);
        power.drainStep(dt, dt_sec);
    } else {
        power.advanceTo(t + dt);
    }
    if (state_ != McuState::Running)
        return false;
    cursor.advance(t + dt);
    cycles += cyc;
    ++instrs;
    if (tracer)
        tracer(pc_, instr);
    if (audit_)
        auditExec(instr);
    execute(instr, t + dt);
    t += dt;
    if (commitExtraTicks_ != 0) {
        // An interruptible checkpoint commit advanced the power
        // system and cursor word by word; fold its duration back
        // into the slice clock.
        t += commitExtraTicks_;
        commitExtraTicks_ = 0;
    }
    if (state_ != McuState::Running)
        return false;

    // Debug interrupt, taken at instruction boundaries.
    if (irqLine && !inIrq && irqHandler != 0) {
        sim::Tick idt =
            static_cast<sim::Tick>(cfg.irqEntryCycles) * cyclePeriod_;
        power.advanceTo(t + idt);
        if (state_ != McuState::Running)
            return false;
        cursor.advance(t + idt);
        cycles += cfg.irqEntryCycles;
        t += idt;
        enterIrq();
        if (state_ != McuState::Running)
            return false;
    }
    return true;
}

bool
Mcu::tryRunBlock(sim::Tick &t, sim::Tick seg_end)
{
    // Anything that makes the next instruction special — a pending
    // sleep, a raised debug IRQ, a power integrator that is not
    // aligned to `t` — drops to the step() path, which handles it
    // exactly like the reference interpreter.
    if (sleepCycles > 0 || irqLine || power.lastUpdateTick() != t)
        return false;
    if (!icacheReady_)
        icacheEnsure();
    if ((pc_ & 3u) || pc_ < icacheBase_)
        return false;
    const std::size_t idx = (pc_ - icacheBase_) >> 2;
    if (idx >= blockAt_.size())
        return false;
    std::int32_t bi = blockAt_[idx];
    if (bi == sbUnbuildable)
        return false;
    if (bi == sbNone) {
        // Anti-thrash gate: compiling right at the brown-out edge
        // would produce blocks that fail admission on every
        // dispatch until the power dies anyway.
        if (!power.blockDrainAdmissible(sbBuildGateSeconds_)) {
            ++sbStats_.fallbacks;
            return false;
        }
        bi = buildBlockAt(pc_, idx);
        if (bi < 0)
            return false;
    }
    Superblock &b = blocks_[static_cast<std::size_t>(bi)];
    if (b.epoch != codeEpoch_) {
        // A store landed on live code (or the caches were bulk
        // invalidated) since this block was compiled. Recompile from
        // current memory; re-decoding every word through the icache
        // fill re-arms the valid bytes, so the *next* overwrite
        // bumps the epoch again. Never shortcut this with a content
        // compare: a same-value store clears the valid byte without
        // re-arming it, and a stamp-only revalidation would let the
        // following (different-value) store go unnoticed.
        ++sbStats_.rebuilds;
        if (!buildInto(b, b.base)) {
            blockAt_[idx] = sbUnbuildable;
            return false;
        }
    }
    // Admission: the block must fit inside the event-free segment,
    // and the supply must provably survive its worst-case drain.
    // When the whole block does not fit the remaining segment, run
    // the longest prefix that does — blocks are straight-line, so a
    // prefix is architecturally just the same instructions with the
    // block ending early. Without this, every segment tail would pay
    // one failed dispatch per remaining instruction. Power
    // inadmissibility is the only true fallback: that is where
    // mid-block brown-outs are allowed to happen, per-instruction.
    // The threshold the voltage is compared against is cached per
    // block and revalidated by draw epoch, so the steady-state
    // admission is one load and one compare.
    if (b.drawStamp != power.drawEpoch()) {
        b.admitVolts =
            power.admissionThresholdVolts(b.worstSeconds);
        b.drawStamp = power.drawEpoch();
    }
    if (t + b.worstDt > seg_end) {
        const sim::Tick budget = seg_end - t;
        sim::Tick wdt = 0;
        double wsec = 0.0;
        std::size_t k = 0;
        while (k < b.ops.size() &&
               wdt + b.ops[k].framStep.dt <= budget) {
            wdt += b.ops[k].framStep.dt;
            wsec += b.ops[k].framStep.dtSeconds;
            ++k;
        }
        // The full-block threshold over-approximates any prefix's;
        // only when it fails is the exact prefix check worth it.
        if (k == 0 || (!power.admissibleAt(b.admitVolts) &&
                       !power.blockDrainAdmissible(wsec))) {
            ++sbStats_.fallbacks;
            return false;
        }
        if (runBlock(t, b, k))
            return true;
    } else {
        if (!power.admissibleAt(b.admitVolts)) {
            ++sbStats_.fallbacks;
            return false;
        }
        if (runBlock(t, b, b.ops.size()))
            return true;
    }
    // Zero instructions retired: the leader thunk itself bailed.
    // A leader that keeps doing that (typically a store whose
    // effective address always resolves to MMIO) makes every
    // dispatch pure overhead, so demote the entry point after a
    // streak. Purely a dispatch heuristic — the instructions still
    // execute, via step() — and invalidateCodeCaches resets the
    // verdict along with every other unbuildable one.
    if (++b.zeroBails >= sbZeroBailDemoteLimit)
        blockAt_[idx] = sbUnbuildable;
    return false;
}

std::int32_t
Mcu::buildBlockAt(mem::Addr pc, std::size_t idx)
{
    if (blocks_.size() >= sbMaxBlocks) {
        blockAt_[idx] = sbUnbuildable;
        return sbUnbuildable;
    }
    blocks_.emplace_back();
    if (!buildInto(blocks_.back(), pc)) {
        blocks_.pop_back();
        blockAt_[idx] = sbUnbuildable;
        return sbUnbuildable;
    }
    const auto bi = static_cast<std::int32_t>(blocks_.size() - 1);
    blockAt_[idx] = bi;
    return bi;
}

bool
Mcu::buildInto(Superblock &b, mem::Addr pc)
{
    b.base = pc;
    b.ops.clear();
    b.worstDt = 0;
    b.worstSeconds = 0.0;
    b.drawStamp = 0; // worstSeconds moves, so the threshold must too
    mem::Region *region = mem_.find(pc);
    if (!region || !region->directStore())
        return false; // never compile out of MMIO-backed words
    const std::uint8_t *store = region->directStore();
    const mem::Addr region_end = region->base() + region->size();
    const std::size_t max_len = std::min<std::size_t>(
        (region_end - pc) / 4, cfg.superblockMaxLen);
    for (std::size_t k = 0; k < max_len; ++k) {
        const mem::Addr ipc = pc + static_cast<mem::Addr>(k * 4);
        const std::size_t slot = (ipc - icacheBase_) >> 2;
        if (!icacheValid_[slot]) {
            // Fill the predecode slot from the region's backing
            // store. Setting the valid byte arms the write watch for
            // this word, which is what keeps the block's epoch check
            // sound: every word of a current-epoch block has its
            // valid byte set, so any overwrite bumps the epoch.
            const std::size_t off = ipc - region->base();
            const std::uint32_t word =
                static_cast<std::uint32_t>(store[off]) |
                (static_cast<std::uint32_t>(store[off + 1]) << 8) |
                (static_cast<std::uint32_t>(store[off + 2]) << 16) |
                (static_cast<std::uint32_t>(store[off + 3]) << 24);
            auto decoded = isa::decode(word);
            if (!decoded)
                break;
            unsigned cyc = 0;
            InstrClass cls = InstrClass::Static;
            classifyCost(decoded->op, cyc, cls);
            icache_[slot] = CachedInstr{
                *decoded, cyc,
                sim::secondsFromTicks(static_cast<sim::Tick>(cyc) *
                                      cyclePeriod_),
                cls};
            icacheValid_[slot] = 1;
        }
        const CachedInstr &ci = icache_[slot];
        const isa::BlockBoundary bb = isa::blockBoundary(ci.instr.op);
        if (bb == isa::BlockBoundary::Barrier)
            break; // HALT / CHKPT / calls / returns end the region
        SbOp op;
        op.instr = ci.instr;
        op.cyc = ci.cycles;
        op.framCyc = ci.cycles;
        op.step.dt = static_cast<sim::Tick>(ci.cycles) * cyclePeriod_;
        op.step.dtSeconds = ci.dtSeconds;
        op.framStep = op.step;
        if (ci.cls == InstrClass::Store) {
            op.framCyc = ci.cycles + cfg.framWriteExtraCycles;
            op.framStep.dt =
                static_cast<sim::Tick>(op.framCyc) * cyclePeriod_;
            // Same pure function step() uses for the FRAM surcharge
            // path, so the sub-step seconds match bit for bit.
            op.framStep.dtSeconds =
                sim::secondsFromTicks(op.framStep.dt);
        }
        // Every sub-step must individually satisfy the batched-drain
        // gate step() applies per instruction.
        if (op.framStep.dt > powerMaxStep_ || op.step.dt <= 0)
            break;
        b.ops.push_back(op);
        b.worstDt += op.framStep.dt;
        b.worstSeconds += op.framStep.dtSeconds;
        if (bb == isa::BlockBoundary::Branch)
            break; // a branch is the block's terminal thunk
    }
    if (b.ops.size() < cfg.superblockMinLen)
        return false;
    b.epoch = codeEpoch_;
    ++sbStats_.blocksBuilt;
    return true;
}

bool
Mcu::runBlock(sim::Tick &t, Superblock &b, std::size_t n_max)
{
    using isa::Opcode;
    const std::uint64_t entry_epoch = codeEpoch_;
    const std::size_t n = n_max;
    std::uint64_t cyc_sum = 0;
    sim::Tick dt_sum = 0;
    std::size_t done = 0;
    mem::Addr next_pc = b.base;
    bool bailed = false;

    // Drain-behind, loop-fused: each thunk retires architecturally
    // and then immediately feeds its exact sub-step to the drainer.
    // Admission already proved the supply survives the worst-case
    // whole block, so the retired prefix cannot brown out, and
    // nothing inside a block reads the analog state or touches the
    // event queue — so draining after each thunk instead of once at
    // the end is unobservable, produces the identical per-instruction
    // sub-step sequence (and RNG draws) the reference path would
    // have, and lets the core overlap the forward-Euler divide chain
    // with the next thunk's work.
    energy::PowerSystem::BlockDrainer drain(power);
    for (std::size_t j = 0; j < n; ++j) {
        const SbOp &op = b.ops[j];
        const isa::Instr &i = op.instr;
        const auto uimm = static_cast<std::uint32_t>(i.imm);
        switch (i.op) {
          case Opcode::Nop:
            break;
          case Opcode::Li:
            regs[i.rd] = uimm;
            break;
          case Opcode::Lui:
            regs[i.rd] = (uimm & 0xFFFFu) << 16;
            break;
          case Opcode::Mov:
            regs[i.rd] = regs[i.rs];
            break;
          case Opcode::Add:
            regs[i.rd] = regs[i.rs] + regs[i.rt];
            break;
          case Opcode::Sub:
            regs[i.rd] = regs[i.rs] - regs[i.rt];
            break;
          case Opcode::Mul:
            regs[i.rd] = regs[i.rs] * regs[i.rt];
            break;
          case Opcode::Divu:
            regs[i.rd] = regs[i.rt] == 0 ? 0xFFFFFFFFu
                                         : regs[i.rs] / regs[i.rt];
            break;
          case Opcode::Remu:
            regs[i.rd] = regs[i.rt] == 0 ? regs[i.rs]
                                         : regs[i.rs] % regs[i.rt];
            break;
          case Opcode::And:
            regs[i.rd] = regs[i.rs] & regs[i.rt];
            break;
          case Opcode::Or:
            regs[i.rd] = regs[i.rs] | regs[i.rt];
            break;
          case Opcode::Xor:
            regs[i.rd] = regs[i.rs] ^ regs[i.rt];
            break;
          case Opcode::Shl:
            regs[i.rd] = regs[i.rs] << (regs[i.rt] & 31u);
            break;
          case Opcode::Shr:
            regs[i.rd] = regs[i.rs] >> (regs[i.rt] & 31u);
            break;
          case Opcode::Sar:
            regs[i.rd] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(regs[i.rs]) >>
                (regs[i.rt] & 31u));
            break;
          case Opcode::Addi:
            regs[i.rd] = regs[i.rs] + uimm;
            break;
          case Opcode::Andi:
            regs[i.rd] = regs[i.rs] & (uimm & 0xFFFFu);
            break;
          case Opcode::Ori:
            regs[i.rd] = regs[i.rs] | (uimm & 0xFFFFu);
            break;
          case Opcode::Xori:
            regs[i.rd] = regs[i.rs] ^ (uimm & 0xFFFFu);
            break;
          case Opcode::Shli:
            regs[i.rd] = regs[i.rs] << (uimm & 31u);
            break;
          case Opcode::Shri:
            regs[i.rd] = regs[i.rs] >> (uimm & 31u);
            break;
          case Opcode::Cmp:
            setFlagsFromCompare(regs[i.rs], regs[i.rt]);
            break;
          case Opcode::Cmpi:
            setFlagsFromCompare(regs[i.rs], uimm);
            break;
          case Opcode::Ldw: {
            const mem::Addr ea = regs[i.rs] + uimm;
            std::uint32_t v;
            // MMIO reads have side effects and may schedule events;
            // a faulting access must be (re)run by step() so the
            // fault commits with reference semantics. Either way:
            // bail before any architectural change.
            if (touchesMmio(ea) ||
                mem_.read32(ea, v) != mem::AccessResult::Ok) {
                bailed = true;
                goto out;
            }
            regs[i.rd] = v;
            break;
          }
          case Opcode::Ldb: {
            const mem::Addr ea = regs[i.rs] + uimm;
            std::uint8_t v;
            if (touchesMmio(ea) ||
                mem_.read8(ea, v) != mem::AccessResult::Ok) {
                bailed = true;
                goto out;
            }
            regs[i.rd] = v;
            break;
          }
          case Opcode::Stw:
          case Opcode::Stb: {
            const mem::Addr ea = regs[i.rs] + uimm;
            if (touchesMmio(ea)) {
                bailed = true;
                goto out;
            }
            const bool fram = eaInFram(ea);
            const mem::AccessResult res =
                i.op == Opcode::Stw
                    ? mem_.write32(ea, regs[i.rd])
                    : mem_.write8(
                          ea, static_cast<std::uint8_t>(regs[i.rd]));
            if (res != mem::AccessResult::Ok) {
                bailed = true;
                goto out;
            }
            const auto &st = fram ? op.framStep : op.step;
            drain.substep(st);
            cyc_sum += fram ? op.framCyc : op.cyc;
            dt_sum += st.dt;
            ++done;
            next_pc += 4;
            if (codeEpoch_ != entry_epoch) {
                // Self-modifying store over live code (possibly this
                // very block). The store itself retired; everything
                // after it must re-decode.
                bailed = true;
                goto out;
            }
            continue;
          }
          case Opcode::Push: {
            const mem::Addr ea = regs[isa::regSp] - 4;
            // Bail before the sp decrement: step() then replays the
            // instruction and faults with sp decremented, exactly as
            // the reference interpreter does.
            if (touchesMmio(ea) ||
                mem_.write32(ea, regs[i.rd]) !=
                    mem::AccessResult::Ok) {
                bailed = true;
                goto out;
            }
            regs[isa::regSp] = ea;
            drain.substep(op.step);
            cyc_sum += op.cyc;
            dt_sum += op.step.dt;
            ++done;
            next_pc += 4;
            if (codeEpoch_ != entry_epoch) {
                // Stack writes can land on ex-code words too.
                bailed = true;
                goto out;
            }
            continue;
          }
          case Opcode::Pop: {
            const mem::Addr ea = regs[isa::regSp];
            std::uint32_t v;
            if (touchesMmio(ea) ||
                mem_.read32(ea, v) != mem::AccessResult::Ok) {
                bailed = true;
                goto out;
            }
            regs[isa::regSp] = ea + 4;
            regs[i.rd] = v;
            break;
          }
          case Opcode::Br:
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu: {
            bool taken = false;
            switch (i.op) {
              case Opcode::Br: taken = true; break;
              case Opcode::Beq: taken = flags_.z; break;
              case Opcode::Bne: taken = !flags_.z; break;
              case Opcode::Blt: taken = flags_.n != flags_.v; break;
              case Opcode::Bge: taken = flags_.n == flags_.v; break;
              case Opcode::Bltu: taken = !flags_.c; break;
              case Opcode::Bgeu: taken = flags_.c; break;
              default: break;
            }
            const mem::Addr ipc =
                b.base + static_cast<mem::Addr>(j * 4);
            next_pc = ipc + 4 + (taken ? uimm : 0);
            drain.substep(op.step);
            cyc_sum += op.cyc;
            dt_sum += op.step.dt;
            ++done;
            goto out; // the terminal thunk of the block
          }
          default:
            // Barriers never compile into a block; defensive bail.
            bailed = true;
            goto out;
        }
        // Common straight-line commit (non-store, non-stack ops)
        // drains the prefilled static sub-step.
        drain.substep(op.step);
        cyc_sum += op.cyc;
        dt_sum += op.step.dt;
        ++done;
        next_pc += 4;
    }
out:
    drain.commit();
    if (done == 0) {
        // The first thunk bailed before retiring anything: report a
        // miss so the caller's step() handles this PC and the slice
        // makes progress.
        ++sbStats_.bailouts;
        return false;
    }
    cursor.advance(t + dt_sum);
    cycles += cyc_sum;
    instrs += done;
    pc_ = next_pc;
    t += dt_sum;
    b.zeroBails = 0;
    ++sbStats_.execs;
    sbStats_.blockInstrs += done;
    ++sbStats_.lengthCounts[std::min<std::size_t>(done,
                                                  superblockLenCap)];
    if (bailed)
        ++sbStats_.bailouts;
    return true;
}

void
Mcu::enterIrq()
{
    regs[isa::regSp] -= 4;
    if (!memWrite32(regs[isa::regSp], flags_.pack()))
        return;
    regs[isa::regSp] -= 4;
    if (!memWrite32(regs[isa::regSp], pc_))
        return;
    pc_ = irqHandler;
    inIrq = true;
}

void
Mcu::setFlagsFromCompare(std::uint32_t a, std::uint32_t b)
{
    std::uint32_t r = a - b;
    flags_.z = a == b;
    flags_.n = (r >> 31) & 1u;
    flags_.c = a >= b;
    flags_.v = (((a ^ b) & (a ^ r)) >> 31) & 1u;
}

void
Mcu::execute(const isa::Instr &i, sim::Tick)
{
    using isa::Opcode;
    mem::Addr next = pc_ + 4;
    auto uimm = static_cast<std::uint32_t>(i.imm);

    switch (i.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        state_ = McuState::Halted;
        power.setLoadCurrent(coreLoad, cfg.haltAmps);
        break;
      case Opcode::Li:
        regs[i.rd] = uimm;
        break;
      case Opcode::Lui:
        regs[i.rd] = (uimm & 0xFFFFu) << 16;
        break;
      case Opcode::Mov:
        regs[i.rd] = regs[i.rs];
        break;
      case Opcode::Add:
        regs[i.rd] = regs[i.rs] + regs[i.rt];
        break;
      case Opcode::Sub:
        regs[i.rd] = regs[i.rs] - regs[i.rt];
        break;
      case Opcode::Mul:
        regs[i.rd] = regs[i.rs] * regs[i.rt];
        break;
      case Opcode::Divu:
        regs[i.rd] = regs[i.rt] == 0 ? 0xFFFFFFFFu
                                     : regs[i.rs] / regs[i.rt];
        break;
      case Opcode::Remu:
        regs[i.rd] =
            regs[i.rt] == 0 ? regs[i.rs] : regs[i.rs] % regs[i.rt];
        break;
      case Opcode::And:
        regs[i.rd] = regs[i.rs] & regs[i.rt];
        break;
      case Opcode::Or:
        regs[i.rd] = regs[i.rs] | regs[i.rt];
        break;
      case Opcode::Xor:
        regs[i.rd] = regs[i.rs] ^ regs[i.rt];
        break;
      case Opcode::Shl:
        regs[i.rd] = regs[i.rs] << (regs[i.rt] & 31u);
        break;
      case Opcode::Shr:
        regs[i.rd] = regs[i.rs] >> (regs[i.rt] & 31u);
        break;
      case Opcode::Sar:
        regs[i.rd] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(regs[i.rs]) >>
            (regs[i.rt] & 31u));
        break;
      case Opcode::Addi:
        regs[i.rd] = regs[i.rs] + uimm;
        break;
      case Opcode::Andi:
        regs[i.rd] = regs[i.rs] & (uimm & 0xFFFFu);
        break;
      case Opcode::Ori:
        regs[i.rd] = regs[i.rs] | (uimm & 0xFFFFu);
        break;
      case Opcode::Xori:
        regs[i.rd] = regs[i.rs] ^ (uimm & 0xFFFFu);
        break;
      case Opcode::Shli:
        regs[i.rd] = regs[i.rs] << (uimm & 31u);
        break;
      case Opcode::Shri:
        regs[i.rd] = regs[i.rs] >> (uimm & 31u);
        break;
      case Opcode::Cmp:
        setFlagsFromCompare(regs[i.rs], regs[i.rt]);
        break;
      case Opcode::Cmpi:
        setFlagsFromCompare(regs[i.rs], uimm);
        break;
      case Opcode::Br:
        next = pc_ + 4 + uimm;
        break;
      case Opcode::Beq:
        if (flags_.z)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bne:
        if (!flags_.z)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Blt:
        if (flags_.n != flags_.v)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bge:
        if (flags_.n == flags_.v)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bltu:
        if (!flags_.c)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bgeu:
        if (flags_.c)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Ldw: {
        std::uint32_t v;
        if (!memRead32(regs[i.rs] + uimm, v))
            return;
        regs[i.rd] = v;
        break;
      }
      case Opcode::Ldb: {
        std::uint8_t v;
        if (!memRead8(regs[i.rs] + uimm, v))
            return;
        regs[i.rd] = v;
        break;
      }
      case Opcode::Stw:
        if (!memWrite32(regs[i.rs] + uimm, regs[i.rd]))
            return;
        break;
      case Opcode::Stb:
        if (!memWrite8(regs[i.rs] + uimm,
                       static_cast<std::uint8_t>(regs[i.rd])))
            return;
        break;
      case Opcode::Push:
        regs[isa::regSp] -= 4;
        if (!memWrite32(regs[isa::regSp], regs[i.rd]))
            return;
        break;
      case Opcode::Pop: {
        std::uint32_t v;
        if (!memRead32(regs[isa::regSp], v))
            return;
        regs[isa::regSp] += 4;
        regs[i.rd] = v;
        break;
      }
      case Opcode::Call:
        regs[isa::regSp] -= 4;
        if (!memWrite32(regs[isa::regSp], pc_ + 4))
            return;
        next = pc_ + 4 + uimm;
        break;
      case Opcode::Callr:
        regs[isa::regSp] -= 4;
        if (!memWrite32(regs[isa::regSp], pc_ + 4))
            return;
        next = regs[i.rs];
        break;
      case Opcode::Ret: {
        std::uint32_t ra;
        if (!memRead32(regs[isa::regSp], ra))
            return;
        regs[isa::regSp] += 4;
        next = ra;
        break;
      }
      case Opcode::Reti: {
        std::uint32_t ra;
        if (!memRead32(regs[isa::regSp], ra))
            return;
        regs[isa::regSp] += 4;
        std::uint32_t fw;
        if (!memRead32(regs[isa::regSp], fw))
            return;
        regs[isa::regSp] += 4;
        flags_ = isa::Flags::unpack(fw);
        inIrq = false;
        next = ra;
        break;
      }
      case Opcode::Chkpt:
        if (chkptEnabled)
            regs[0] = doCheckpoint() ? 1u : 0u;
        break;
    }
    pc_ = next;
}

void
Mcu::auditExec(const isa::Instr &i)
{
    using isa::Opcode;
    auto uimm = static_cast<std::uint32_t>(i.imm);
    switch (i.op) {
      case Opcode::Ldw:
        audit_->onLoad(i.rd, regs[i.rs] + uimm, 4);
        break;
      case Opcode::Ldb:
        audit_->onLoad(i.rd, regs[i.rs] + uimm, 1);
        break;
      case Opcode::Stw:
        audit_->onStore(i.rs, regs[i.rs] + uimm, pc_, 4);
        break;
      case Opcode::Stb:
        audit_->onStore(i.rs, regs[i.rs] + uimm, pc_, 1);
        break;
      case Opcode::Mov:
      case Opcode::Addi:
        audit_->onRegDerive(i.rd, i.rs);
        break;
      case Opcode::Add:
      case Opcode::Sub:
        audit_->onRegCombine(i.rd, i.rs, i.rt);
        break;
      case Opcode::Li:
      case Opcode::Lui:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
      case Opcode::Pop:
        audit_->onRegWrite(i.rd);
        break;
      case Opcode::Chkpt:
        if (chkptEnabled)
            audit_->onRegWrite(0);
        break;
      default:
        break;
    }
}

unsigned
Mcu::checkpointCostCycles() const
{
    mem::Addr sp = regs[isa::regSp];
    mem::Addr stack_bytes = sp <= cfg.stackTop ? cfg.stackTop - sp : 0;
    return checkpointCostCyclesFor(stack_bytes);
}

unsigned
Mcu::checkpointCostCyclesFor(std::uint32_t stack_bytes) const
{
    unsigned words = 22 + stack_bytes / 4;
    if (cfg.commitDiscipline == CommitDiscipline::Sealed)
        ++words; // the seal word
    return words * (1 + cfg.memExtraCycles + cfg.framWriteExtraCycles);
}

Mcu::CostQuote
Mcu::costQuote(isa::Opcode op) const
{
    unsigned cyc = 0;
    InstrClass cls = InstrClass::Static;
    classifyCost(op, cyc, cls);
    CostQuote q;
    q.cycles = cyc;
    q.framExtraCycles =
        cls == InstrClass::Store ? cfg.framWriteExtraCycles : 0;
    q.stackDependent = cls == InstrClass::Chkpt;
    return q;
}

std::uint32_t
Mcu::frameCrcAt(mem::Addr base, std::uint32_t stack_bytes,
                std::uint32_t seq) const
{
    mem::Region *region = mem_.find(base);
    if (auto *ram = dynamic_cast<mem::Ram *>(region)) {
        const mem::Addr end = base + ckStackOff + stack_bytes;
        if (end <= ram->base() + ram->size()) {
            const std::uint8_t *frame =
                ram->data() + (base - ram->base());
            return runtime::ckfmt::frameCrc(frame, stack_bytes, seq);
        }
    }
    // Slow path for exotic layouts: stream the frame byte-wise.
    std::uint32_t crc = seq;
    for (mem::Addr off = ckPcOff; off < ckStackOff + stack_bytes;
         ++off) {
        std::uint8_t b = 0;
        mem_.read8(base + off, b);
        crc = sim::crc32(&b, 1, crc);
    }
    return crc;
}

bool
Mcu::slotSealed(int slot, std::uint32_t &seq_out) const
{
    mem::Addr base = cfg.checkpointBase + slot * cfg.checkpointSlotSize;
    if (debugRead32(base + ckMagicOff) != ckMagic)
        return false;
    std::uint32_t seq = debugRead32(base + ckSeqOff);
    std::uint32_t sp = debugRead32(base + ckSpOff);
    std::uint32_t stack_bytes = debugRead32(base + ckStackLenOff);
    if (sp > cfg.stackTop ||
        ckStackOff + stack_bytes > cfg.checkpointSlotSize ||
        runtime::ckfmt::sealOff(stack_bytes) + 4 >
            cfg.checkpointSlotSize) {
        return false;
    }
    std::uint32_t seal =
        debugRead32(base + runtime::ckfmt::sealOff(stack_bytes));
    if (seal != frameCrcAt(base, stack_bytes, seq))
        return false;
    seq_out = seq;
    return true;
}

bool
Mcu::commitAtomic(mem::Addr base, std::uint32_t sp,
                  std::uint32_t stack_bytes, std::uint32_t next_seq)
{
    const bool naive = cfg.commitDiscipline == CommitDiscipline::Naive;
    // pc saved as the instruction after CHKPT: execution resumes
    // there on restore.
    if (!memWrite32(base + ckMagicOff, ckMagic))
        return false;
    // Naive discipline: sequence number written eagerly, before the
    // payload. Harmless here (the whole burst is atomic) but the
    // ordering bug it models shows its teeth under interruptible
    // commits.
    if (naive && !memWrite32(base + ckSeqOff, next_seq))
        return false;
    if (!memWrite32(base + ckPcOff, pc_ + 4) ||
        !memWrite32(base + ckFlagsOff, flags_.pack()) ||
        !memWrite32(base + ckSpOff, sp) ||
        !memWrite32(base + ckStackLenOff, stack_bytes)) {
        return false;
    }
    for (unsigned r = 0; r < isa::numRegs; ++r) {
        if (!memWrite32(base + ckRegsOff + r * 4, regs[r]))
            return false;
    }
    for (mem::Addr off = 0; off < stack_bytes; ++off) {
        std::uint8_t b;
        if (!memRead8(sp + off, b) ||
            !memWrite8(base + ckStackOff + off, b)) {
            return false;
        }
    }
    if (cfg.commitDiscipline == CommitDiscipline::Sealed &&
        !memWrite32(base + runtime::ckfmt::sealOff(stack_bytes),
                    frameCrcAt(base, stack_bytes, next_seq))) {
        return false;
    }
    if (!naive && !memWrite32(base + ckSeqOff, next_seq))
        return false;
    return true;
}

bool
Mcu::commitInterruptible(mem::Addr base, std::uint32_t sp,
                         std::uint32_t stack_bytes,
                         std::uint32_t next_seq)
{
    const unsigned word_cyc =
        1 + cfg.memExtraCycles + cfg.framWriteExtraCycles;
    const sim::Tick word_dt =
        static_cast<sim::Tick>(word_cyc) * cyclePeriod_;
    bool torn = false;
    if (nv_)
        nv_->beginBurst(base);

    // One NV word write: drain its energy first (the cell program
    // pulse), then land the value. If the supply browns out during
    // the pulse the burst tears here -- the word either never lands
    // or lands with corrupted bits (partial cell write).
    auto commitWord = [&](mem::Addr addr, std::uint32_t value) {
        if (torn || state_ != McuState::Running)
            return false;
        if (nvHooks_.onCommitWord)
            nvHooks_.onCommitWord();
        const sim::Tick at = cursor.now() + word_dt;
        power.advanceTo(at);
        cursor.advance(at);
        cycles += word_cyc;
        commitExtraTicks_ += word_dt;
        if (state_ != McuState::Running) {
            torn = true;
            std::uint32_t v = value;
            if (nvHooks_.onTornWord && nvHooks_.onTornWord(v))
                mem_.write32(addr, v);
            return false;
        }
        if (nv_)
            nv_->noteBurstWord();
        return memWrite32(addr, value);
    };
    auto stackWord = [&](mem::Addr off) {
        std::uint32_t w = 0;
        for (unsigned b = 0; b < 4 && off + b < stack_bytes; ++b) {
            std::uint8_t byte = 0;
            mem_.read8(sp + off + b, byte);
            w |= static_cast<std::uint32_t>(byte) << (8 * b);
        }
        return w;
    };

    const bool naive = cfg.commitDiscipline == CommitDiscipline::Naive;
    bool ok = commitWord(base + ckMagicOff, ckMagic);
    if (naive)
        ok = ok && commitWord(base + ckSeqOff, next_seq);
    ok = ok && commitWord(base + ckPcOff, pc_ + 4);
    ok = ok && commitWord(base + ckFlagsOff, flags_.pack());
    ok = ok && commitWord(base + ckSpOff, sp);
    ok = ok && commitWord(base + ckStackLenOff, stack_bytes);
    for (unsigned r = 0; ok && r < isa::numRegs; ++r)
        ok = commitWord(base + ckRegsOff + r * 4, regs[r]);
    for (mem::Addr off = 0; ok && off < stack_bytes; off += 4)
        ok = commitWord(base + ckStackOff + off, stackWord(off));
    if (ok && cfg.commitDiscipline == CommitDiscipline::Sealed) {
        ok = commitWord(base + runtime::ckfmt::sealOff(stack_bytes),
                        frameCrcAt(base, stack_bytes, next_seq));
    }
    if (ok && !naive)
        ok = commitWord(base + ckSeqOff, next_seq);

    if (nv_)
        nv_->endBurst(torn);
    if (torn)
        ++tornCommits_;
    return ok;
}

bool
Mcu::doCheckpoint()
{
    mem::Addr sp = regs[isa::regSp];
    if (sp > cfg.stackTop)
        return false;
    mem::Addr stack_bytes = cfg.stackTop - sp;
    if (ckStackOff + stack_bytes > cfg.checkpointSlotSize)
        return false;
    // The interruptible path word-pads the stack image; the sealed
    // discipline appends the seal word after it. Either needs room.
    const std::uint32_t padded =
        runtime::ckfmt::align4(static_cast<std::uint32_t>(stack_bytes));
    if (cfg.interruptibleCommit &&
        ckStackOff + padded > cfg.checkpointSlotSize)
        return false;
    if (cfg.commitDiscipline == CommitDiscipline::Sealed &&
        runtime::ckfmt::sealOff(static_cast<std::uint32_t>(
            stack_bytes)) + 4 > cfg.checkpointSlotSize)
        return false;

    // Double-buffered: write into the slot with the older sequence
    // number, then commit by writing the new sequence number last
    // (SeqLast/Sealed; Naive writes it first, which is the bug the
    // crash-anywhere oracle exists to catch).
    std::uint32_t seq0 = debugRead32(cfg.checkpointBase + ckSeqOff);
    std::uint32_t seq1 = debugRead32(cfg.checkpointBase +
                                     cfg.checkpointSlotSize + ckSeqOff);
    int slot = seq0 <= seq1 ? 0 : 1;
    std::uint32_t next_seq = std::max(seq0, seq1) + 1;
    mem::Addr base = cfg.checkpointBase + slot * cfg.checkpointSlotSize;
    if (nv_)
        nv_->setCommitSlot(slot);

    bool ok = cfg.interruptibleCommit
                  ? commitInterruptible(base, sp, stack_bytes, next_seq)
                  : commitAtomic(base, sp, stack_bytes, next_seq);
    if (!ok)
        return false;
    ++checkpointsTaken;
    if (audit_) {
        audit_->onCheckpointCommit(
            cursor.now(), slot,
            frameCrcAt(base, stack_bytes, next_seq));
    }
    return true;
}

bool
Mcu::tryRestore()
{
    int best_slot = -1;
    std::uint32_t best_seq = 0;
    if (cfg.commitDiscipline == CommitDiscipline::Sealed) {
        // Recovery scan: newest *sealed* frame wins. A torn newest
        // frame fails its seal check and the scan falls back to the
        // surviving older frame -- crash-anywhere thus resumes from
        // either the pre- or post-checkpoint world, never a hybrid.
        for (int slot = 0; slot < 2; ++slot) {
            std::uint32_t seq = 0;
            if (slotSealed(slot, seq) && seq > best_seq) {
                best_seq = seq;
                best_slot = slot;
            }
        }
    } else {
        for (int slot = 0; slot < 2; ++slot) {
            mem::Addr base =
                cfg.checkpointBase + slot * cfg.checkpointSlotSize;
            std::uint32_t magic = debugRead32(base + ckMagicOff);
            std::uint32_t seq = debugRead32(base + ckSeqOff);
            if (magic == ckMagic && seq > best_seq) {
                best_seq = seq;
                best_slot = slot;
            }
        }
    }
    if (best_slot < 0)
        return false;
    mem::Addr base =
        cfg.checkpointBase + best_slot * cfg.checkpointSlotSize;
    mem::Addr sp = debugRead32(base + ckSpOff);
    mem::Addr stack_bytes = debugRead32(base + ckStackLenOff);
    if (sp > cfg.stackTop ||
        ckStackOff + stack_bytes > cfg.checkpointSlotSize) {
        return false;
    }
    for (unsigned r = 0; r < isa::numRegs; ++r)
        regs[r] = debugRead32(base + ckRegsOff + r * 4);
    regs[isa::regSp] = sp;
    flags_ = isa::Flags::unpack(debugRead32(base + ckFlagsOff));
    for (mem::Addr off = 0; off < stack_bytes; ++off) {
        std::uint8_t b = 0;
        mem_.read8(base + ckStackOff + off, b);
        mem_.write8(sp + off, b);
    }
    pc_ = debugRead32(base + ckPcOff);
    ++checkpointsRestored;
    if (audit_) {
        audit_->onCheckpointRestore(
            cursor.now(), best_slot,
            frameCrcAt(base,
                       static_cast<std::uint32_t>(stack_bytes),
                       debugRead32(base + ckSeqOff)));
    }
    return true;
}

void
Mcu::raiseFault(McuFault cause)
{
    // A crashed core keeps drawing current until the supply browns
    // out: the symptom the paper's case study describes as "the GPIO
    // pin indicating main loop progress stops toggling".
    fault_ = cause;
    state_ = McuState::Faulted;
    ++faults;
}

bool
Mcu::memRead32(mem::Addr addr, std::uint32_t &value)
{
    switch (mem_.read32(addr, value)) {
      case mem::AccessResult::Ok:
        return true;
      case mem::AccessResult::Misaligned:
        raiseFault(McuFault::Misaligned);
        return false;
      case mem::AccessResult::Unmapped:
        raiseFault(McuFault::BusError);
        return false;
    }
    return false;
}

bool
Mcu::memWrite32(mem::Addr addr, std::uint32_t value)
{
    switch (mem_.write32(addr, value)) {
      case mem::AccessResult::Ok:
        return true;
      case mem::AccessResult::Misaligned:
        raiseFault(McuFault::Misaligned);
        return false;
      case mem::AccessResult::Unmapped:
        raiseFault(McuFault::BusError);
        return false;
    }
    return false;
}

bool
Mcu::memRead8(mem::Addr addr, std::uint8_t &value)
{
    if (mem_.read8(addr, value) == mem::AccessResult::Ok)
        return true;
    raiseFault(McuFault::BusError);
    return false;
}

bool
Mcu::memWrite8(mem::Addr addr, std::uint8_t value)
{
    if (mem_.write8(addr, value) == mem::AccessResult::Ok)
        return true;
    raiseFault(McuFault::BusError);
    return false;
}

std::uint32_t
Mcu::debugRead32(mem::Addr addr) const
{
    std::uint32_t value = 0;
    if (mem_.read32(addr, value) != mem::AccessResult::Ok)
        return 0xFFFFFFFFu;
    return value;
}

void
Mcu::debugWrite32(mem::Addr addr, std::uint32_t value)
{
    mem_.write32(addr, value);
}

void
Mcu::saveState(sim::SnapshotWriter &w) const
{
    w.section("mcu");
    for (std::uint32_t r : regs)
        w.u32(r);
    w.u32(pc_);
    w.u32(flags_.pack());
    w.u8(static_cast<std::uint8_t>(state_));
    w.u8(static_cast<std::uint8_t>(fault_));
    w.u32(entry);
    w.u32(irqHandler);
    w.boolean(irqLine);
    w.boolean(inIrq);
    w.boolean(chkptEnabled);
    w.u64(sleepCycles);
    w.u64(cycles);
    w.u64(instrs);
    w.u64(reboots);
    w.u64(faults);
    w.u64(checkpointsTaken);
    w.u64(checkpointsRestored);
    w.u64(tornCommits_);
    w.pendingEvent(sliceEvent, sliceDueAt);
    w.pendingEvent(bootEvent, bootDueAt);
}

void
Mcu::restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer)
{
    r.section("mcu");
    for (std::uint32_t &reg : regs)
        reg = r.u32();
    pc_ = r.u32();
    flags_ = isa::Flags::unpack(r.u32());
    state_ = static_cast<McuState>(r.u8());
    fault_ = static_cast<McuFault>(r.u8());
    entry = r.u32();
    irqHandler = r.u32();
    irqLine = r.boolean();
    inIrq = r.boolean();
    chkptEnabled = r.boolean();
    sleepCycles = r.u64();
    cycles = r.u64();
    instrs = r.u64();
    reboots = r.u64();
    faults = r.u64();
    checkpointsTaken = r.u64();
    checkpointsRestored = r.u64();
    tornCommits_ = r.u64();
    // The decode caches are epoch artifacts, not architectural
    // state: drop them and let them refill (bit-identical either
    // way). Restored memory bytes may differ arbitrarily from the
    // pre-restore image, so superblocks must recompile too.
    invalidateCodeCaches();
    if (sliceEvent != sim::invalidEventId) {
        sim().cancel(sliceEvent);
        sliceEvent = sim::invalidEventId;
    }
    if (bootEvent != sim::invalidEventId) {
        sim().cancel(bootEvent);
        bootEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { runSlice(); },
        [this](sim::EventId id, sim::Tick due) {
            sliceEvent = id;
            sliceDueAt = due;
        });
    r.pendingEvent(
        rearmer, [this] { boot(); },
        [this](sim::EventId id, sim::Tick due) {
            bootEvent = id;
            bootDueAt = due;
        });
}

} // namespace edb::mcu
