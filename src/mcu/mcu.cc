#include "mcu/mcu.hh"

#include <algorithm>

#include "mcu/mmio_map.hh"
#include "mem/nv_audit.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

namespace {

/** Checkpoint slot field offsets (bytes). */
constexpr mem::Addr ckMagicOff = 0;
constexpr mem::Addr ckSeqOff = 4;
constexpr mem::Addr ckPcOff = 8;
constexpr mem::Addr ckFlagsOff = 12;
constexpr mem::Addr ckSpOff = 16;
constexpr mem::Addr ckStackLenOff = 20;
constexpr mem::Addr ckRegsOff = 24;
constexpr mem::Addr ckStackOff = ckRegsOff + 16 * 4;
constexpr std::uint32_t ckMagic = 0x43484B50; // "CHKP"

} // namespace

const char *
mcuStateName(McuState state)
{
    switch (state) {
      case McuState::Off: return "off";
      case McuState::Booting: return "booting";
      case McuState::Running: return "running";
      case McuState::Halted: return "halted";
      case McuState::Faulted: return "faulted";
    }
    return "unknown";
}

const char *
mcuFaultName(McuFault fault)
{
    switch (fault) {
      case McuFault::None: return "none";
      case McuFault::IllegalInstr: return "illegal-instruction";
      case McuFault::BusError: return "bus-error";
      case McuFault::Misaligned: return "misaligned";
    }
    return "unknown";
}

Mcu::Mcu(sim::Simulator &simulator, std::string component_name,
         sim::TimeCursor &time_cursor, mem::MemoryMap &memory,
         energy::PowerSystem &power_sys, McuConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      mem_(memory),
      power(power_sys),
      cfg(config)
{
    cyclePeriod_ = sim::ticksFromSeconds(1.0 / cfg.clockHz);
    chkptEnabled = cfg.checkpointingEnabled;
    coreLoad = power.addLoad(name() + ".core", cfg.activeAmps, false);
    power.addPowerListener([this](bool on) { onPowerChange(on); });
    powerMaxStep_ = power.config().maxStep;
    mem_.setFindCacheEnabled(cfg.flatDispatch);
}

Mcu::~Mcu()
{
    // The write watch closes over `this`; drop it before the map can
    // outlive the core.
    if (icacheReady_)
        mem_.clearWriteWatch();
}

void
Mcu::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::cycleLo, name() + ".cycleLo",
        [this] { return static_cast<std::uint32_t>(cycles); }, nullptr);
    mmio.addRegister(
        mmio::cycleHi, name() + ".cycleHi",
        [this] { return static_cast<std::uint32_t>(cycles >> 32); },
        nullptr);
    mmio.addRegister(
        mmio::chkptCtl, name() + ".chkptCtl",
        [this] { return chkptEnabled ? 1u : 0u; },
        [this](std::uint32_t v) { chkptEnabled = v & 1u; });
    mmio.addRegister(
        mmio::sleep, name() + ".sleep",
        [this] {
            return static_cast<std::uint32_t>(sleepCycles);
        },
        [this](std::uint32_t v) {
            sleepCycles = v;
            if (sleepCycles > 0)
                power.setLoadCurrent(coreLoad, cfg.sleepAmps);
        });
}

void
Mcu::loadProgram(const isa::Program &program)
{
    // Bulk-copy each segment straight into the backing store of the
    // region(s) it lands in. Flashing is not a program store: it
    // must neither pollute the wear statistics nor cost O(bytes)
    // routed byte writes.
    for (const auto &seg : program.segments) {
        std::size_t off = 0;
        while (off < seg.bytes.size()) {
            mem::Addr addr = seg.base + static_cast<mem::Addr>(off);
            mem::Region *region = mem_.find(addr);
            if (!region) {
                sim::fatal("Mcu::loadProgram: address ", addr,
                           " is not mapped");
            }
            std::size_t room = region->base() + region->size() - addr;
            std::size_t chunk =
                std::min(seg.bytes.size() - off, room);
            if (auto *ram = dynamic_cast<mem::Ram *>(region)) {
                ram->load(addr, seg.bytes.data() + off, chunk);
            } else {
                for (std::size_t i = 0; i < chunk; ++i)
                    mem_.write8(addr + static_cast<mem::Addr>(i),
                                seg.bytes[off + i]);
            }
            off += chunk;
        }
    }
    entry = program.entry;
    irqHandler = program.irqHandler;
    chkptEnabled = cfg.checkpointingEnabled;
    icacheInvalidateAll();
    invalidateCheckpoints();
    if (audit_)
        audit_->reset();
}

void
Mcu::icacheEnsure()
{
    icacheReady_ = true;
    mem::Addr lo = ~mem::Addr{0};
    mem::Addr hi = 0;
    framRanges_.clear();
    for (auto *region : mem_.regions()) {
        if (region->kind() == mem::RegionKind::Fram)
            framRanges_.emplace_back(region->base(), region->size());
        if (region->kind() == mem::RegionKind::Mmio)
            continue;
        lo = std::min(lo, region->base());
        hi = std::max(hi, region->base() + region->size());
    }
    if (lo >= hi) {
        icache_.clear();
        icacheValid_.clear();
        return;
    }
    lo &= ~mem::Addr{3};
    icacheBase_ = lo;
    icache_.assign((hi - lo) / 4, {});
    icacheValid_.assign(icache_.size(), 0);
    // Any routed store into the cached span drops the covering word
    // (the map clears the valid byte directly). Bulk mutations that
    // bypass the map (Ram::load, SRAM poison) are handled by the
    // explicit invalidate-alls in loadProgram and onPowerChange.
    mem_.setWriteWatch(lo, hi, icacheValid_.data());
}

void
Mcu::icacheInvalidateAll()
{
    if (!icacheValid_.empty())
        std::fill(icacheValid_.begin(), icacheValid_.end(),
                  std::uint8_t{0});
}

void
Mcu::invalidateCheckpoints()
{
    for (int slot = 0; slot < 2; ++slot) {
        mem::Addr base =
            cfg.checkpointBase + slot * cfg.checkpointSlotSize;
        mem_.write32(base + ckMagicOff, 0);
        mem_.write32(base + ckSeqOff, 0);
    }
}

void
Mcu::onPowerChange(bool on)
{
    if (on) {
        state_ = McuState::Booting;
        power.setLoadCurrent(coreLoad, cfg.activeAmps);
        power.setLoadEnabled(coreLoad, true);
        bootDueAt = cursor.now() + cfg.bootDelay;
        bootEvent = cursor.scheduleIn(cfg.bootDelay, [this] { boot(); });
        return;
    }
    // Brown-out: volatile state is lost; the board reset hook poisons
    // SRAM and resets peripherals.
    if (audit_ && state_ != McuState::Off)
        audit_->onPowerLoss(cursor.now());
    state_ = McuState::Off;
    fault_ = McuFault::None;
    inIrq = false;
    sleepCycles = 0;
    if (sliceEvent != sim::invalidEventId) {
        sim().cancel(sliceEvent);
        sliceEvent = sim::invalidEventId;
    }
    if (bootEvent != sim::invalidEventId) {
        sim().cancel(bootEvent);
        bootEvent = sim::invalidEventId;
    }
    power.setLoadEnabled(coreLoad, false);
    // The reset hook poisons SRAM behind the map's back; any
    // predecoded instruction may now be stale.
    icacheInvalidateAll();
    if (resetHook)
        resetHook();
}

void
Mcu::boot()
{
    bootEvent = sim::invalidEventId;
    if (state_ != McuState::Booting)
        return;
    regs.fill(0);
    flags_ = isa::Flags{};
    fault_ = McuFault::None;
    inIrq = false;
    sleepCycles = 0;
    regs[isa::regSp] = cfg.stackTop;
    pc_ = entry;
    state_ = McuState::Running;
    ++reboots;
    if (audit_)
        audit_->onBoot(cursor.now());
    power.setLoadCurrent(coreLoad, cfg.activeAmps);
    power.setLoadEnabled(coreLoad, true);
    if (chkptEnabled)
        tryRestore();
    sliceDueAt = cursor.now();
    sliceEvent = sim().schedule(sliceDueAt, [this] { runSlice(); });
}

void
Mcu::runSlice()
{
    sliceEvent = sim::invalidEventId;
    if (state_ != McuState::Running)
        return;
    sim::Tick t = std::max(now(), cursor.now());
    sim::Tick end = t + cfg.sliceQuantum;
    if (!cfg.batchedSlices) {
        // Reference path: peek the event queue before every
        // instruction.
        while (state_ == McuState::Running && t < end) {
            if (sim().nextEventTime() <= t)
                break;
            if (!step(t))
                break;
        }
    } else {
        // Segment-amortized path: the next-event time can only move
        // when an event is scheduled or cancelled, and during a
        // slice only MMIO-touching instructions, the tracer, or a
        // power transition (which ends the slice anyway) can do
        // that. So read it once per segment and re-read only after
        // such an instruction. Instruction-for-instruction identical
        // to the reference path.
        const bool traced = static_cast<bool>(tracer);
        while (state_ == McuState::Running && t < end) {
            sim::Tick next_evt = sim().nextEventTime();
            if (next_evt <= t)
                break;
            const sim::Tick seg_end = std::min(end, next_evt);
            bool live = true;
            mem_.clearMmioTouched();
            while (state_ == McuState::Running && t < seg_end) {
                if (!step(t)) {
                    live = false;
                    break;
                }
                if (mem_.mmioTouched() || traced)
                    break; // resync with the event queue
            }
            if (!live)
                break;
        }
    }
    if (state_ == McuState::Running) {
        sliceDueAt = t;
        sliceEvent = sim().schedule(t, [this] { runSlice(); });
    }
}

bool
Mcu::step(sim::Tick &t)
{
    // Timed low-power wait: consume the remaining sleep budget in
    // bounded chunks (so queued events interleave at their proper
    // times) at the sleep current. A debug interrupt wakes early.
    if (sleepCycles > 0) {
        if (irqLine && irqHandler != 0) {
            sleepCycles = 0;
        } else {
            std::uint64_t chunk = std::min<std::uint64_t>(
                sleepCycles, 200); // 50 us at 4 MHz
            sim::Tick dt =
                static_cast<sim::Tick>(chunk) * cyclePeriod_;
            power.advanceTo(t + dt);
            if (state_ != McuState::Running)
                return false;
            cursor.advance(t + dt);
            cycles += chunk;
            t += dt;
            sleepCycles -= chunk;
        }
        if (sleepCycles == 0)
            power.setLoadCurrent(coreLoad, cfg.activeAmps);
        return true;
    }

    // Fetch: hit the predecode cache, else fetch + decode + classify
    // and (when the PC is cacheable) remember the result.
    const isa::Instr *ip = nullptr;
    unsigned cyc = 0;
    double dt_sec = 0.0;
    bool have_dt_sec = false;
    InstrClass cls = InstrClass::Static;
    std::size_t idx = 0;
    bool cacheable = false;
    if (cfg.predecodeCache) {
        if (!icacheReady_)
            icacheEnsure();
        if (!(pc_ & 3u) && pc_ >= icacheBase_) {
            idx = (pc_ - icacheBase_) >> 2;
            if (idx < icache_.size()) {
                cacheable = true;
                if (icacheValid_[idx]) {
                    const CachedInstr &entry = icache_[idx];
                    ip = &entry.instr;
                    cyc = entry.cycles;
                    cls = entry.cls;
                    dt_sec = entry.dtSeconds;
                    have_dt_sec = true;
                }
            }
        }
    }
    isa::Instr fetched;
    if (!ip) {
        std::uint32_t word;
        if (!memRead32(pc_, word))
            return false;
        auto decoded = isa::decode(word);
        if (!decoded) {
            raiseFault(McuFault::IllegalInstr);
            return false;
        }
        fetched = *decoded;
        ip = &fetched;
        cyc = isa::baseCycles(fetched.op);
        switch (fetched.op) {
          case isa::Opcode::Ldw:
          case isa::Opcode::Ldb:
          case isa::Opcode::Push:
          case isa::Opcode::Pop:
          case isa::Opcode::Call:
          case isa::Opcode::Callr:
          case isa::Opcode::Ret:
          case isa::Opcode::Reti:
            cyc += cfg.memExtraCycles;
            break;
          case isa::Opcode::Stw:
          case isa::Opcode::Stb:
            cyc += cfg.memExtraCycles;
            cls = InstrClass::Store;
            break;
          case isa::Opcode::Chkpt:
            cls = InstrClass::Chkpt;
            break;
          default:
            break;
        }
        if (cacheable) {
            // Never cache instruction words read from MMIO: those
            // reads have side effects and must stay on the slow
            // path.
            mem::Region *region = mem_.find(pc_);
            if (region && region->kind() != mem::RegionKind::Mmio) {
                icache_[idx] = CachedInstr{
                    fetched, cyc,
                    sim::secondsFromTicks(
                        static_cast<sim::Tick>(cyc) * cyclePeriod_),
                    cls};
                icacheValid_[idx] = 1;
            }
        }
    }
    const isa::Instr &instr = *ip;

    // Dynamic cost components (same order of operations as the
    // reference cost switch).
    if (cls == InstrClass::Store) {
        mem::Addr ea = regs[instr.rs] +
                       static_cast<std::uint32_t>(instr.imm);
        bool fram = false;
        if (icacheReady_) {
            // Exact per-region ranges (gaps stay non-FRAM), so this
            // matches the map lookup for every address.
            for (const auto &[fbase, fspan] : framRanges_) {
                if (ea - fbase < fspan) {
                    fram = true;
                    break;
                }
            }
        } else {
            mem::Region *region = mem_.find(ea);
            fram = region && region->kind() == mem::RegionKind::Fram;
        }
        if (fram) {
            cyc += cfg.framWriteExtraCycles;
            have_dt_sec = false;
        }
    } else if (cls == InstrClass::Chkpt) {
        if (chkptEnabled) {
            cyc = checkpointCostCycles();
            have_dt_sec = false;
        }
    }

    // Drain the supply across the instruction; a brown-out mid
    // instruction kills it before it commits.
    sim::Tick dt = static_cast<sim::Tick>(cyc) * cyclePeriod_;
    if (cfg.batchedDrain && dt <= powerMaxStep_ &&
        power.lastUpdateTick() == t) {
        if (!have_dt_sec)
            dt_sec = sim::secondsFromTicks(dt);
        power.drainStep(dt, dt_sec);
    } else {
        power.advanceTo(t + dt);
    }
    if (state_ != McuState::Running)
        return false;
    cursor.advance(t + dt);
    cycles += cyc;
    ++instrs;
    if (tracer)
        tracer(pc_, instr);
    if (audit_)
        auditExec(instr);
    execute(instr, t + dt);
    t += dt;
    if (state_ != McuState::Running)
        return false;

    // Debug interrupt, taken at instruction boundaries.
    if (irqLine && !inIrq && irqHandler != 0) {
        sim::Tick idt =
            static_cast<sim::Tick>(cfg.irqEntryCycles) * cyclePeriod_;
        power.advanceTo(t + idt);
        if (state_ != McuState::Running)
            return false;
        cursor.advance(t + idt);
        cycles += cfg.irqEntryCycles;
        t += idt;
        enterIrq();
        if (state_ != McuState::Running)
            return false;
    }
    return true;
}

void
Mcu::enterIrq()
{
    regs[isa::regSp] -= 4;
    if (!memWrite32(regs[isa::regSp], flags_.pack()))
        return;
    regs[isa::regSp] -= 4;
    if (!memWrite32(regs[isa::regSp], pc_))
        return;
    pc_ = irqHandler;
    inIrq = true;
}

void
Mcu::setFlagsFromCompare(std::uint32_t a, std::uint32_t b)
{
    std::uint32_t r = a - b;
    flags_.z = a == b;
    flags_.n = (r >> 31) & 1u;
    flags_.c = a >= b;
    flags_.v = (((a ^ b) & (a ^ r)) >> 31) & 1u;
}

void
Mcu::execute(const isa::Instr &i, sim::Tick)
{
    using isa::Opcode;
    mem::Addr next = pc_ + 4;
    auto uimm = static_cast<std::uint32_t>(i.imm);

    switch (i.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        state_ = McuState::Halted;
        power.setLoadCurrent(coreLoad, cfg.haltAmps);
        break;
      case Opcode::Li:
        regs[i.rd] = uimm;
        break;
      case Opcode::Lui:
        regs[i.rd] = (uimm & 0xFFFFu) << 16;
        break;
      case Opcode::Mov:
        regs[i.rd] = regs[i.rs];
        break;
      case Opcode::Add:
        regs[i.rd] = regs[i.rs] + regs[i.rt];
        break;
      case Opcode::Sub:
        regs[i.rd] = regs[i.rs] - regs[i.rt];
        break;
      case Opcode::Mul:
        regs[i.rd] = regs[i.rs] * regs[i.rt];
        break;
      case Opcode::Divu:
        regs[i.rd] = regs[i.rt] == 0 ? 0xFFFFFFFFu
                                     : regs[i.rs] / regs[i.rt];
        break;
      case Opcode::Remu:
        regs[i.rd] =
            regs[i.rt] == 0 ? regs[i.rs] : regs[i.rs] % regs[i.rt];
        break;
      case Opcode::And:
        regs[i.rd] = regs[i.rs] & regs[i.rt];
        break;
      case Opcode::Or:
        regs[i.rd] = regs[i.rs] | regs[i.rt];
        break;
      case Opcode::Xor:
        regs[i.rd] = regs[i.rs] ^ regs[i.rt];
        break;
      case Opcode::Shl:
        regs[i.rd] = regs[i.rs] << (regs[i.rt] & 31u);
        break;
      case Opcode::Shr:
        regs[i.rd] = regs[i.rs] >> (regs[i.rt] & 31u);
        break;
      case Opcode::Sar:
        regs[i.rd] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(regs[i.rs]) >>
            (regs[i.rt] & 31u));
        break;
      case Opcode::Addi:
        regs[i.rd] = regs[i.rs] + uimm;
        break;
      case Opcode::Andi:
        regs[i.rd] = regs[i.rs] & (uimm & 0xFFFFu);
        break;
      case Opcode::Ori:
        regs[i.rd] = regs[i.rs] | (uimm & 0xFFFFu);
        break;
      case Opcode::Xori:
        regs[i.rd] = regs[i.rs] ^ (uimm & 0xFFFFu);
        break;
      case Opcode::Shli:
        regs[i.rd] = regs[i.rs] << (uimm & 31u);
        break;
      case Opcode::Shri:
        regs[i.rd] = regs[i.rs] >> (uimm & 31u);
        break;
      case Opcode::Cmp:
        setFlagsFromCompare(regs[i.rs], regs[i.rt]);
        break;
      case Opcode::Cmpi:
        setFlagsFromCompare(regs[i.rs], uimm);
        break;
      case Opcode::Br:
        next = pc_ + 4 + uimm;
        break;
      case Opcode::Beq:
        if (flags_.z)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bne:
        if (!flags_.z)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Blt:
        if (flags_.n != flags_.v)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bge:
        if (flags_.n == flags_.v)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bltu:
        if (!flags_.c)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Bgeu:
        if (flags_.c)
            next = pc_ + 4 + uimm;
        break;
      case Opcode::Ldw: {
        std::uint32_t v;
        if (!memRead32(regs[i.rs] + uimm, v))
            return;
        regs[i.rd] = v;
        break;
      }
      case Opcode::Ldb: {
        std::uint8_t v;
        if (!memRead8(regs[i.rs] + uimm, v))
            return;
        regs[i.rd] = v;
        break;
      }
      case Opcode::Stw:
        if (!memWrite32(regs[i.rs] + uimm, regs[i.rd]))
            return;
        break;
      case Opcode::Stb:
        if (!memWrite8(regs[i.rs] + uimm,
                       static_cast<std::uint8_t>(regs[i.rd])))
            return;
        break;
      case Opcode::Push:
        regs[isa::regSp] -= 4;
        if (!memWrite32(regs[isa::regSp], regs[i.rd]))
            return;
        break;
      case Opcode::Pop: {
        std::uint32_t v;
        if (!memRead32(regs[isa::regSp], v))
            return;
        regs[isa::regSp] += 4;
        regs[i.rd] = v;
        break;
      }
      case Opcode::Call:
        regs[isa::regSp] -= 4;
        if (!memWrite32(regs[isa::regSp], pc_ + 4))
            return;
        next = pc_ + 4 + uimm;
        break;
      case Opcode::Callr:
        regs[isa::regSp] -= 4;
        if (!memWrite32(regs[isa::regSp], pc_ + 4))
            return;
        next = regs[i.rs];
        break;
      case Opcode::Ret: {
        std::uint32_t ra;
        if (!memRead32(regs[isa::regSp], ra))
            return;
        regs[isa::regSp] += 4;
        next = ra;
        break;
      }
      case Opcode::Reti: {
        std::uint32_t ra;
        if (!memRead32(regs[isa::regSp], ra))
            return;
        regs[isa::regSp] += 4;
        std::uint32_t fw;
        if (!memRead32(regs[isa::regSp], fw))
            return;
        regs[isa::regSp] += 4;
        flags_ = isa::Flags::unpack(fw);
        inIrq = false;
        next = ra;
        break;
      }
      case Opcode::Chkpt:
        if (chkptEnabled)
            regs[0] = doCheckpoint() ? 1u : 0u;
        break;
    }
    pc_ = next;
}

void
Mcu::auditExec(const isa::Instr &i)
{
    using isa::Opcode;
    auto uimm = static_cast<std::uint32_t>(i.imm);
    switch (i.op) {
      case Opcode::Ldw:
        audit_->onLoad(i.rd, regs[i.rs] + uimm, 4);
        break;
      case Opcode::Ldb:
        audit_->onLoad(i.rd, regs[i.rs] + uimm, 1);
        break;
      case Opcode::Stw:
        audit_->onStore(i.rs, regs[i.rs] + uimm, pc_, 4);
        break;
      case Opcode::Stb:
        audit_->onStore(i.rs, regs[i.rs] + uimm, pc_, 1);
        break;
      case Opcode::Mov:
      case Opcode::Addi:
        audit_->onRegDerive(i.rd, i.rs);
        break;
      case Opcode::Add:
      case Opcode::Sub:
        audit_->onRegCombine(i.rd, i.rs, i.rt);
        break;
      case Opcode::Li:
      case Opcode::Lui:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::Remu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sar:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
      case Opcode::Pop:
        audit_->onRegWrite(i.rd);
        break;
      case Opcode::Chkpt:
        if (chkptEnabled)
            audit_->onRegWrite(0);
        break;
      default:
        break;
    }
}

unsigned
Mcu::checkpointCostCycles() const
{
    mem::Addr sp = regs[isa::regSp];
    mem::Addr stack_bytes = sp <= cfg.stackTop ? cfg.stackTop - sp : 0;
    unsigned words = 22 + stack_bytes / 4;
    return words * (1 + cfg.memExtraCycles + cfg.framWriteExtraCycles);
}

bool
Mcu::doCheckpoint()
{
    mem::Addr sp = regs[isa::regSp];
    if (sp > cfg.stackTop)
        return false;
    mem::Addr stack_bytes = cfg.stackTop - sp;
    if (ckStackOff + stack_bytes > cfg.checkpointSlotSize)
        return false;

    // Double-buffered: write into the slot with the older sequence
    // number, then commit by writing the new sequence number last.
    std::uint32_t seq0 = debugRead32(cfg.checkpointBase + ckSeqOff);
    std::uint32_t seq1 = debugRead32(cfg.checkpointBase +
                                     cfg.checkpointSlotSize + ckSeqOff);
    int slot = seq0 <= seq1 ? 0 : 1;
    std::uint32_t next_seq = std::max(seq0, seq1) + 1;
    mem::Addr base = cfg.checkpointBase + slot * cfg.checkpointSlotSize;

    // pc saved as the instruction after CHKPT: execution resumes
    // there on restore.
    if (!memWrite32(base + ckMagicOff, ckMagic) ||
        !memWrite32(base + ckPcOff, pc_ + 4) ||
        !memWrite32(base + ckFlagsOff, flags_.pack()) ||
        !memWrite32(base + ckSpOff, sp) ||
        !memWrite32(base + ckStackLenOff, stack_bytes)) {
        return false;
    }
    for (unsigned r = 0; r < isa::numRegs; ++r) {
        if (!memWrite32(base + ckRegsOff + r * 4, regs[r]))
            return false;
    }
    for (mem::Addr off = 0; off < stack_bytes; ++off) {
        std::uint8_t b;
        if (!memRead8(sp + off, b) ||
            !memWrite8(base + ckStackOff + off, b)) {
            return false;
        }
    }
    if (!memWrite32(base + ckSeqOff, next_seq))
        return false;
    ++checkpointsTaken;
    if (audit_)
        audit_->onCheckpointCommit(cursor.now());
    return true;
}

bool
Mcu::tryRestore()
{
    int best_slot = -1;
    std::uint32_t best_seq = 0;
    for (int slot = 0; slot < 2; ++slot) {
        mem::Addr base =
            cfg.checkpointBase + slot * cfg.checkpointSlotSize;
        std::uint32_t magic = debugRead32(base + ckMagicOff);
        std::uint32_t seq = debugRead32(base + ckSeqOff);
        if (magic == ckMagic && seq > best_seq) {
            best_seq = seq;
            best_slot = slot;
        }
    }
    if (best_slot < 0)
        return false;
    mem::Addr base =
        cfg.checkpointBase + best_slot * cfg.checkpointSlotSize;
    mem::Addr sp = debugRead32(base + ckSpOff);
    mem::Addr stack_bytes = debugRead32(base + ckStackLenOff);
    if (sp > cfg.stackTop ||
        ckStackOff + stack_bytes > cfg.checkpointSlotSize) {
        return false;
    }
    for (unsigned r = 0; r < isa::numRegs; ++r)
        regs[r] = debugRead32(base + ckRegsOff + r * 4);
    regs[isa::regSp] = sp;
    flags_ = isa::Flags::unpack(debugRead32(base + ckFlagsOff));
    for (mem::Addr off = 0; off < stack_bytes; ++off) {
        std::uint8_t b = 0;
        mem_.read8(base + ckStackOff + off, b);
        mem_.write8(sp + off, b);
    }
    pc_ = debugRead32(base + ckPcOff);
    ++checkpointsRestored;
    if (audit_)
        audit_->onCheckpointRestore(cursor.now());
    return true;
}

void
Mcu::raiseFault(McuFault cause)
{
    // A crashed core keeps drawing current until the supply browns
    // out: the symptom the paper's case study describes as "the GPIO
    // pin indicating main loop progress stops toggling".
    fault_ = cause;
    state_ = McuState::Faulted;
    ++faults;
}

bool
Mcu::memRead32(mem::Addr addr, std::uint32_t &value)
{
    switch (mem_.read32(addr, value)) {
      case mem::AccessResult::Ok:
        return true;
      case mem::AccessResult::Misaligned:
        raiseFault(McuFault::Misaligned);
        return false;
      case mem::AccessResult::Unmapped:
        raiseFault(McuFault::BusError);
        return false;
    }
    return false;
}

bool
Mcu::memWrite32(mem::Addr addr, std::uint32_t value)
{
    switch (mem_.write32(addr, value)) {
      case mem::AccessResult::Ok:
        return true;
      case mem::AccessResult::Misaligned:
        raiseFault(McuFault::Misaligned);
        return false;
      case mem::AccessResult::Unmapped:
        raiseFault(McuFault::BusError);
        return false;
    }
    return false;
}

bool
Mcu::memRead8(mem::Addr addr, std::uint8_t &value)
{
    if (mem_.read8(addr, value) == mem::AccessResult::Ok)
        return true;
    raiseFault(McuFault::BusError);
    return false;
}

bool
Mcu::memWrite8(mem::Addr addr, std::uint8_t value)
{
    if (mem_.write8(addr, value) == mem::AccessResult::Ok)
        return true;
    raiseFault(McuFault::BusError);
    return false;
}

std::uint32_t
Mcu::debugRead32(mem::Addr addr) const
{
    std::uint32_t value = 0;
    if (mem_.read32(addr, value) != mem::AccessResult::Ok)
        return 0xFFFFFFFFu;
    return value;
}

void
Mcu::debugWrite32(mem::Addr addr, std::uint32_t value)
{
    mem_.write32(addr, value);
}

void
Mcu::saveState(sim::SnapshotWriter &w) const
{
    w.section("mcu");
    for (std::uint32_t r : regs)
        w.u32(r);
    w.u32(pc_);
    w.u32(flags_.pack());
    w.u8(static_cast<std::uint8_t>(state_));
    w.u8(static_cast<std::uint8_t>(fault_));
    w.u32(entry);
    w.u32(irqHandler);
    w.boolean(irqLine);
    w.boolean(inIrq);
    w.boolean(chkptEnabled);
    w.u64(sleepCycles);
    w.u64(cycles);
    w.u64(instrs);
    w.u64(reboots);
    w.u64(faults);
    w.u64(checkpointsTaken);
    w.u64(checkpointsRestored);
    w.pendingEvent(sliceEvent, sliceDueAt);
    w.pendingEvent(bootEvent, bootDueAt);
}

void
Mcu::restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer)
{
    r.section("mcu");
    for (std::uint32_t &reg : regs)
        reg = r.u32();
    pc_ = r.u32();
    flags_ = isa::Flags::unpack(r.u32());
    state_ = static_cast<McuState>(r.u8());
    fault_ = static_cast<McuFault>(r.u8());
    entry = r.u32();
    irqHandler = r.u32();
    irqLine = r.boolean();
    inIrq = r.boolean();
    chkptEnabled = r.boolean();
    sleepCycles = r.u64();
    cycles = r.u64();
    instrs = r.u64();
    reboots = r.u64();
    faults = r.u64();
    checkpointsTaken = r.u64();
    checkpointsRestored = r.u64();
    // The predecode cache is an epoch artifact, not architectural
    // state: drop it and let it refill (bit-identical either way).
    icacheInvalidateAll();
    if (sliceEvent != sim::invalidEventId) {
        sim().cancel(sliceEvent);
        sliceEvent = sim::invalidEventId;
    }
    if (bootEvent != sim::invalidEventId) {
        sim().cancel(bootEvent);
        bootEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { runSlice(); },
        [this](sim::EventId id, sim::Tick due) {
            sliceEvent = id;
            sliceDueAt = due;
        });
    r.pendingEvent(
        rearmer, [this] { boot(); },
        [this](sim::EventId id, sim::Tick due) {
            bootEvent = id;
            bootDueAt = due;
        });
}

} // namespace edb::mcu
