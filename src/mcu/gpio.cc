#include "mcu/gpio.hh"

#include "mcu/mmio_map.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

Gpio::Gpio(sim::Simulator &simulator, std::string component_name,
           sim::TimeCursor &time_cursor)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor)
{}

void
Gpio::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::gpioOut, name() + ".out",
        [this] { return out; },
        [this](std::uint32_t v) { writeOut(v); });
    mmio.addRegister(
        mmio::gpioIn, name() + ".in", [this] { return in; }, nullptr);
    mmio.addRegister(
        mmio::gpioToggle, name() + ".toggle", nullptr,
        [this](std::uint32_t v) { writeOut(out ^ v); });
}

void
Gpio::writeOut(std::uint32_t value)
{
    std::uint32_t changed = out ^ value;
    out = value;
    if (!changed || listeners.empty())
        return;
    sim::Tick when = cursor.now();
    for (unsigned p = 0; p < 32; ++p) {
        if ((changed >> p) & 1u) {
            bool level = (out >> p) & 1u;
            for (const auto &listener : listeners)
                listener(p, level, when);
        }
    }
}

void
Gpio::setInput(unsigned index, bool level)
{
    if (level)
        in |= 1u << index;
    else
        in &= ~(1u << index);
}

void
Gpio::addListener(Listener listener)
{
    listeners.push_back(std::move(listener));
}

void
Gpio::powerLost()
{
    writeOut(0);
}

void
Gpio::saveState(sim::SnapshotWriter &w) const
{
    w.section("gpio");
    w.u32(out);
    w.u32(in);
}

void
Gpio::restoreState(sim::SnapshotReader &r)
{
    r.section("gpio");
    out = r.u32();
    in = r.u32();
}

} // namespace edb::mcu
