#include "mcu/led.hh"

#include "mcu/mmio_map.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

Led::Led(sim::Simulator &simulator, std::string component_name,
         energy::PowerSystem &power_sys, double on_amps)
    : sim::Component(simulator, std::move(component_name)),
      power(power_sys)
{
    load = power.addLoad(name(), on_amps, false);
}

void
Led::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::led, name(),
        [this] { return on ? 1u : 0u; },
        [this](std::uint32_t v) { set(v & 1u); });
}

void
Led::set(bool level)
{
    if (level == on)
        return;
    on = level;
    if (on)
        ++blinks;
    power.setLoadEnabled(load, on);
}

void
Led::powerLost()
{
    set(false);
}

void
Led::saveState(sim::SnapshotWriter &w) const
{
    w.section("led");
    w.boolean(on);
    w.u64(blinks);
}

void
Led::restoreState(sim::SnapshotReader &r)
{
    r.section("led");
    on = r.boolean();
    blinks = r.u64();
}

} // namespace edb::mcu
