/**
 * @file
 * Target-side debug port: code-marker lines, debug-request line,
 * debug UART and the passive breakpoint mask.
 *
 * These are the target's halves of the physical connections in paper
 * Fig 5 ("Code Marker", "Interrupt", target<->debugger comm). The
 * target-side libEDB runtime drives them from guest assembly; the
 * EDB board attaches listeners on the other side.
 *
 * With n marker lines, 2^n - 1 distinct watchpoint ids can be
 * signalled (id 0 would be indistinguishable from no pulse), exactly
 * the paper's Section 4.1.3 capacity statement.
 */

#ifndef EDB_MCU_DEBUG_PORT_HH
#define EDB_MCU_DEBUG_PORT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mcu/uart.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::mcu {

/** Configuration of the debug port. */
struct DebugPortConfig
{
    /** Number of GPIO lines allocated to code markers. */
    unsigned markerLines = 4;
    /** Debug UART parameters (shared link with the EDB board; the
     *  level-shifted buffer on this link is low-drive). */
    UartConfig uart = {115200.0, 0.8e-3, 10.0, 16};
};

/** Target-side half of the EDB wiring. */
class DebugPort : public sim::Component
{
  public:
    /** Marker pulse: (watchpoint id, when). */
    using MarkerListener = std::function<void(std::uint32_t, sim::Tick)>;
    /** Debug-request line change: (level, when). */
    using ReqListener = std::function<void(bool, sim::Tick)>;

    DebugPort(sim::Simulator &simulator, std::string component_name,
              sim::TimeCursor &cursor, energy::PowerSystem &power,
              DebugPortConfig config = {});

    /** Install MARKER/DBGREQ/DBGUART/BKPTMASK registers. */
    void installMmio(mem::MmioRegion &mmio);

    /** Observe code-marker pulses (EDB's program-event monitor). */
    void addMarkerListener(MarkerListener listener);

    /** Observe the debug-request line (EDB's firmware). */
    void addReqListener(ReqListener listener);

    /** The debug UART (EDB reads TX via listener, feeds RX). */
    Uart &uart() { return dbgUart; }

    /** Maximum representable watchpoint id (2^n - 1). */
    std::uint32_t maxMarkerId() const;

    /** Debug-request line level. */
    bool reqLevel() const { return req; }

    /**
     * EDB-side write of the passive breakpoint bitmap (models EDB
     * configuring the target through the debug interface).
     */
    void setBreakpointMask(std::uint32_t mask) { bkptMask = mask; }
    std::uint32_t breakpointMask() const { return bkptMask; }

    /** Number of marker pulses emitted. */
    std::uint64_t markerCount() const { return markers; }

    /** Reset on power loss. */
    void powerLost();

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Includes the nested debug UART.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    void pulseMarker(std::uint32_t id);
    void setReq(bool level);

    sim::TimeCursor &cursor;
    DebugPortConfig cfg;
    Uart dbgUart;
    std::vector<MarkerListener> markerListeners;
    std::vector<ReqListener> reqListeners;
    bool req = false;
    std::uint32_t bkptMask = 0;
    std::uint64_t markers = 0;
};

} // namespace edb::mcu

#endif // EDB_MCU_DEBUG_PORT_HH
