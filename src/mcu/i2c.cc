#include "mcu/i2c.hh"

#include "mcu/mmio_map.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

I2cController::I2cController(sim::Simulator &simulator,
                             std::string component_name,
                             sim::TimeCursor &time_cursor,
                             energy::PowerSystem &power_sys,
                             I2cConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      power(power_sys),
      cfg(config)
{
    busLoad = power.addLoad(name() + ".bus", cfg.busActiveAmps, false);
}

sim::Tick
I2cController::transactionTime() const
{
    // 9 clocks per wire byte (8 data + ack).
    double seconds = cfg.bytesPerTransaction * 9.0 / cfg.clockHz;
    return sim::ticksFromSeconds(seconds);
}

void
I2cController::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::i2cAddr, name() + ".addr", nullptr,
        [this](std::uint32_t v) {
            curAddr = static_cast<std::uint8_t>(v & 0x7F);
        });
    mmio.addRegister(
        mmio::i2cReg, name() + ".reg", nullptr,
        [this](std::uint32_t v) {
            curReg = static_cast<std::uint8_t>(v);
        });
    mmio.addRegister(
        mmio::i2cData, name() + ".data",
        [this] { return static_cast<std::uint32_t>(curData); },
        [this](std::uint32_t v) {
            curData = static_cast<std::uint8_t>(v);
        });
    mmio.addRegister(
        mmio::i2cCtrl, name() + ".ctrl", nullptr,
        [this](std::uint32_t v) {
            if (v == 1)
                start(true);
            else if (v == 2)
                start(false);
        });
    mmio.addRegister(
        mmio::i2cStatus, name() + ".status",
        [this] {
            std::uint32_t s = 0;
            if (inFlight)
                s |= 1u;
            if (done)
                s |= 2u;
            return s;
        },
        nullptr);
}

void
I2cController::attach(I2cDevice *device)
{
    devices.push_back(device);
}

void
I2cController::addSniffer(Sniffer sniffer)
{
    sniffers.push_back(std::move(sniffer));
}

I2cDevice *
I2cController::findDevice(std::uint8_t addr) const
{
    for (auto *device : devices) {
        if (device->address() == addr)
            return device;
    }
    return nullptr;
}

void
I2cController::start(bool is_read)
{
    if (inFlight)
        return;
    inFlight = true;
    done = false;
    curIsRead = is_read;
    power.setLoadEnabled(busLoad, true);
    busDueAt = cursor.now() + transactionTime();
    busEvent = cursor.scheduleIn(transactionTime(), [this] { finish(); });
}

void
I2cController::finish()
{
    busEvent = sim::invalidEventId;
    if (!inFlight)
        return;
    inFlight = false;
    done = true;
    power.setLoadEnabled(busLoad, false);
    I2cDevice *device = findDevice(curAddr);
    if (curIsRead) {
        curData = device ? device->readReg(curReg) : 0xFF;
    } else if (device) {
        device->writeReg(curReg, curData);
    }
    sim::Tick when = cursor.now();
    for (const auto &sniffer : sniffers)
        sniffer(curAddr, curReg, curData, curIsRead, when);
}

void
I2cController::powerLost()
{
    if (busEvent != sim::invalidEventId) {
        sim().cancel(busEvent);
        busEvent = sim::invalidEventId;
    }
    inFlight = false;
    done = false;
    power.setLoadEnabled(busLoad, false);
}

void
I2cController::saveState(sim::SnapshotWriter &w) const
{
    w.section("i2c");
    w.u8(curAddr);
    w.u8(curReg);
    w.u8(curData);
    w.boolean(curIsRead);
    w.boolean(inFlight);
    w.boolean(done);
    w.pendingEvent(busEvent, busDueAt);
}

void
I2cController::restoreState(sim::SnapshotReader &r,
                            sim::EventRearmer &rearmer)
{
    r.section("i2c");
    curAddr = r.u8();
    curReg = r.u8();
    curData = r.u8();
    curIsRead = r.boolean();
    inFlight = r.boolean();
    done = r.boolean();
    if (busEvent != sim::invalidEventId) {
        sim().cancel(busEvent);
        busEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { finish(); },
        [this](sim::EventId id, sim::Tick due) {
            busEvent = id;
            busDueAt = due;
        });
}

} // namespace edb::mcu
