/**
 * @file
 * On-chip ADC of the target MCU.
 *
 * The paper notes (Section 4.1) that "while it is possible for energy
 * harvesting devices to measure their stored energy levels, doing so
 * uses energy, perturbing the energy state being measured". This
 * model makes that cost concrete: a conversion takes real time and
 * draws extra supply current, so self-measurement is visible in the
 * intermittent behaviour.
 */

#ifndef EDB_MCU_ADC_HH
#define EDB_MCU_ADC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "energy/power_system.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::mcu {

/** Configuration of the target's on-chip ADC. */
struct AdcConfig
{
    unsigned bits = 12;
    double vrefVolts = 3.0;
    /** Conversion time (sample + hold + convert). */
    sim::Tick conversionTime = 20 * sim::oneUs;
    /** Extra supply current during a conversion. */
    double conversionAmps = 0.25e-3;
};

/** Successive-approximation ADC with registered analog channels. */
class Adc : public sim::Component
{
  public:
    /** Analog channel source: returns volts at sample time. */
    using ChannelFn = std::function<double()>;

    Adc(sim::Simulator &simulator, std::string component_name,
        sim::TimeCursor &cursor, energy::PowerSystem &power,
        AdcConfig config = {});

    /** Install CTRL/STATUS/VALUE registers. */
    void installMmio(mem::MmioRegion &mmio);

    /** Register an analog input channel. */
    void addChannel(unsigned channel, ChannelFn source);

    /** Quantize a voltage the way this ADC would. */
    std::uint32_t quantize(double volts) const;

    /** Full-scale code. */
    std::uint32_t fullScale() const { return (1u << cfg.bits) - 1; }

    /** Abort any conversion (reboot). */
    void powerLost();

    /// @name Snapshot support (see sim/snapshot.hh)
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    void start(unsigned channel);
    void finish();

    sim::TimeCursor &cursor;
    energy::PowerSystem &power;
    AdcConfig cfg;
    energy::PowerSystem::LoadHandle convLoad;
    std::map<unsigned, ChannelFn> channels;
    unsigned curChannel = 0;
    std::uint32_t value = 0;
    bool busy = false;
    bool done = false;
    sim::EventId convEvent = sim::invalidEventId;
    sim::Tick convDueAt = 0;
};

} // namespace edb::mcu

#endif // EDB_MCU_ADC_HH
