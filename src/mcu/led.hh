/**
 * @file
 * LED indicator with its (prohibitive) current draw.
 *
 * "Powering an LED increases the WISP's current draw by five times,
 * from around 1 mA to over 5 mA" (paper Section 2.2). The model adds
 * a configurable load while lit so the LED-tracing baseline's energy
 * interference is measurable (bench `ablation_led_tracing`).
 */

#ifndef EDB_MCU_LED_HH
#define EDB_MCU_LED_HH

#include <cstdint>
#include <string>

#include "energy/power_system.hh"
#include "mem/memory.hh"
#include "sim/simulator.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
} // namespace edb::sim

namespace edb::mcu {

/** A single LED on the target board. */
class Led : public sim::Component
{
  public:
    Led(sim::Simulator &simulator, std::string component_name,
        energy::PowerSystem &power, double on_amps = 4.0e-3);

    /** Install the LED register. */
    void installMmio(mem::MmioRegion &mmio);

    /** True while lit. */
    bool lit() const { return on; }

    /** Number of times the LED has been switched on. */
    std::uint64_t blinkCount() const { return blinks; }

    /** Reset on power loss. */
    void powerLost();

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Raw member restore; the LED's supply load is restored
    /// positionally by PowerSystem.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
    /// @}

  private:
    void set(bool level);

    energy::PowerSystem &power;
    energy::PowerSystem::LoadHandle load;
    bool on = false;
    std::uint64_t blinks = 0;
};

} // namespace edb::mcu

#endif // EDB_MCU_LED_HH
