/**
 * @file
 * General-purpose I/O port.
 *
 * The case-study applications toggle GPIO pins to externally signal
 * progress (paper Figs 6-10: "the code toggles a GPIO pin to indicate
 * that the main loop is running"); EDB and the oscilloscope observe
 * the pins through listeners.
 */

#ifndef EDB_MCU_GPIO_HH
#define EDB_MCU_GPIO_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/memory.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
} // namespace edb::sim

namespace edb::mcu {

/** 32-pin output/input port with change listeners. */
class Gpio : public sim::Component
{
  public:
    /** Called on each output pin change with (pin, level, when). */
    using Listener =
        std::function<void(unsigned, bool, sim::Tick)>;

    Gpio(sim::Simulator &simulator, std::string component_name,
         sim::TimeCursor &cursor);

    /** Install OUT / IN / TOGGLE registers into the MMIO region. */
    void installMmio(mem::MmioRegion &mmio);

    /** Current output word. */
    std::uint32_t output() const { return out; }

    /** Level of one output pin. */
    bool pin(unsigned index) const { return (out >> index) & 1u; }

    /** External input drive (e.g. a switch or another device). */
    void setInput(unsigned index, bool level);

    /** Observe output changes. */
    void addListener(Listener listener);

    /** Reset on power loss: all outputs low (listeners notified). */
    void powerLost();

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Restore writes the pin words raw — no listener notifications,
    /// since the restored run's observers re-attach fresh.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
    /// @}

  private:
    void writeOut(std::uint32_t value);

    sim::TimeCursor &cursor;
    std::uint32_t out = 0;
    std::uint32_t in = 0;
    std::vector<Listener> listeners;
};

} // namespace edb::mcu

#endif // EDB_MCU_GPIO_HH
