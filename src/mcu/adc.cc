#include "mcu/adc.hh"

#include <cmath>

#include "mcu/mmio_map.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

Adc::Adc(sim::Simulator &simulator, std::string component_name,
         sim::TimeCursor &time_cursor, energy::PowerSystem &power_sys,
         AdcConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      power(power_sys),
      cfg(config)
{
    convLoad = power.addLoad(name() + ".conv", cfg.conversionAmps, false);
}

void
Adc::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::adcCtrl, name() + ".ctrl", nullptr,
        [this](std::uint32_t v) { start(v); });
    mmio.addRegister(
        mmio::adcStatus, name() + ".status",
        [this] {
            std::uint32_t s = 0;
            if (busy)
                s |= 1u;
            if (done)
                s |= 2u;
            return s;
        },
        nullptr);
    mmio.addRegister(
        mmio::adcValue, name() + ".value",
        [this] { return value; }, nullptr);
}

void
Adc::addChannel(unsigned channel, ChannelFn source)
{
    channels[channel] = std::move(source);
}

std::uint32_t
Adc::quantize(double volts) const
{
    if (volts <= 0.0)
        return 0;
    double code = volts / cfg.vrefVolts *
                  static_cast<double>(fullScale());
    auto q = static_cast<std::uint32_t>(std::lround(code));
    return q > fullScale() ? fullScale() : q;
}

void
Adc::start(unsigned channel)
{
    if (busy)
        return;
    busy = true;
    done = false;
    curChannel = channel;
    power.setLoadEnabled(convLoad, true);
    convDueAt = cursor.now() + cfg.conversionTime;
    convEvent = cursor.scheduleIn(cfg.conversionTime,
                                  [this] { finish(); });
}

void
Adc::finish()
{
    convEvent = sim::invalidEventId;
    if (!busy)
        return;
    busy = false;
    done = true;
    power.setLoadEnabled(convLoad, false);
    auto it = channels.find(curChannel);
    value = it != channels.end() ? quantize(it->second()) : 0;
}

void
Adc::powerLost()
{
    if (convEvent != sim::invalidEventId) {
        sim().cancel(convEvent);
        convEvent = sim::invalidEventId;
    }
    busy = false;
    done = false;
    power.setLoadEnabled(convLoad, false);
}

void
Adc::saveState(sim::SnapshotWriter &w) const
{
    w.section("adc");
    w.u32(curChannel);
    w.u32(value);
    w.boolean(busy);
    w.boolean(done);
    w.pendingEvent(convEvent, convDueAt);
}

void
Adc::restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer)
{
    r.section("adc");
    curChannel = r.u32();
    value = r.u32();
    busy = r.boolean();
    done = r.boolean();
    if (convEvent != sim::invalidEventId) {
        sim().cancel(convEvent);
        convEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { finish(); },
        [this](sim::EventId id, sim::Tick due) {
            convEvent = id;
            convDueAt = due;
        });
}

} // namespace edb::mcu
