#include "mcu/uart.hh"

#include "sim/snapshot.hh"

namespace edb::mcu {

Uart::Uart(sim::Simulator &simulator, std::string component_name,
           sim::TimeCursor &time_cursor, energy::PowerSystem &power_sys,
           UartConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      power(power_sys),
      cfg(config)
{
    txLoad = power.addLoad(name() + ".tx", cfg.txActiveAmps, false);
}

sim::Tick
Uart::byteTime() const
{
    return sim::ticksFromSeconds(cfg.bitsPerByte / cfg.baud);
}

void
Uart::installMmio(mem::MmioRegion &mmio, mem::Addr tx_addr,
                  mem::Addr status_addr, mem::Addr rx_addr)
{
    mmio.addRegister(
        tx_addr, name() + ".tx", nullptr,
        [this](std::uint32_t v) {
            startTx(static_cast<std::uint8_t>(v));
        });
    mmio.addRegister(
        status_addr, name() + ".status",
        [this] {
            std::uint32_t s = 0;
            if (busy)
                s |= 1u;
            if (!rxFifo.empty())
                s |= 2u;
            return s;
        },
        nullptr);
    mmio.addRegister(
        rx_addr, name() + ".rx",
        [this]() -> std::uint32_t {
            if (rxFifo.empty())
                return 0;
            std::uint8_t b = rxFifo.front();
            rxFifo.pop_front();
            return b;
        },
        nullptr);
}

void
Uart::addTxListener(TxListener listener)
{
    txListeners.push_back(std::move(listener));
}

void
Uart::startTx(std::uint8_t byte)
{
    if (busy) {
        // Software is expected to poll the busy bit; a write while
        // busy is dropped, as on real hardware without a TX FIFO.
        ++txDropped;
        return;
    }
    busy = true;
    shifting = byte;
    power.setLoadEnabled(txLoad, true);
    txDueAt = cursor.now() + byteTime();
    txEvent = cursor.scheduleIn(byteTime(), [this] { finishTx(); });
}

void
Uart::finishTx()
{
    txEvent = sim::invalidEventId;
    if (!busy)
        return;
    busy = false;
    power.setLoadEnabled(txLoad, false);
    ++txCount;
    std::uint8_t byte = shifting;
    sim::Tick when = cursor.now();
    for (const auto &listener : txListeners)
        listener(byte, when);
}

void
Uart::receiveByte(std::uint8_t byte)
{
    rxFifo.push_back(byte);
    while (rxFifo.size() > cfg.rxFifoDepth)
        rxFifo.pop_front();
}

void
Uart::powerLost()
{
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    busy = false;
    power.setLoadEnabled(txLoad, false);
    rxFifo.clear();
}

void
Uart::saveState(sim::SnapshotWriter &w) const
{
    w.section("uart");
    w.boolean(busy);
    w.u8(shifting);
    w.u64(txCount);
    w.u64(txDropped);
    w.u32(static_cast<std::uint32_t>(rxFifo.size()));
    for (std::uint8_t b : rxFifo)
        w.u8(b);
    w.pendingEvent(txEvent, txDueAt);
}

void
Uart::restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer)
{
    r.section("uart");
    busy = r.boolean();
    shifting = r.u8();
    txCount = r.u64();
    txDropped = r.u64();
    rxFifo.clear();
    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        rxFifo.push_back(r.u8());
    // The txLoad enable is restored positionally by PowerSystem.
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { finishTx(); },
        [this](sim::EventId id, sim::Tick due) {
            txEvent = id;
            txDueAt = due;
        });
}

} // namespace edb::mcu
