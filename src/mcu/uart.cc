#include "mcu/uart.hh"

namespace edb::mcu {

Uart::Uart(sim::Simulator &simulator, std::string component_name,
           sim::TimeCursor &time_cursor, energy::PowerSystem &power_sys,
           UartConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      power(power_sys),
      cfg(config)
{
    txLoad = power.addLoad(name() + ".tx", cfg.txActiveAmps, false);
}

sim::Tick
Uart::byteTime() const
{
    return sim::ticksFromSeconds(cfg.bitsPerByte / cfg.baud);
}

void
Uart::installMmio(mem::MmioRegion &mmio, mem::Addr tx_addr,
                  mem::Addr status_addr, mem::Addr rx_addr)
{
    mmio.addRegister(
        tx_addr, name() + ".tx", nullptr,
        [this](std::uint32_t v) {
            startTx(static_cast<std::uint8_t>(v));
        });
    mmio.addRegister(
        status_addr, name() + ".status",
        [this] {
            std::uint32_t s = 0;
            if (busy)
                s |= 1u;
            if (!rxFifo.empty())
                s |= 2u;
            return s;
        },
        nullptr);
    mmio.addRegister(
        rx_addr, name() + ".rx",
        [this]() -> std::uint32_t {
            if (rxFifo.empty())
                return 0;
            std::uint8_t b = rxFifo.front();
            rxFifo.pop_front();
            return b;
        },
        nullptr);
}

void
Uart::addTxListener(TxListener listener)
{
    txListeners.push_back(std::move(listener));
}

void
Uart::startTx(std::uint8_t byte)
{
    if (busy) {
        // Software is expected to poll the busy bit; a write while
        // busy is dropped, as on real hardware without a TX FIFO.
        ++txDropped;
        return;
    }
    busy = true;
    shifting = byte;
    power.setLoadEnabled(txLoad, true);
    txEvent = cursor.scheduleIn(byteTime(), [this] { finishTx(); });
}

void
Uart::finishTx()
{
    txEvent = sim::invalidEventId;
    if (!busy)
        return;
    busy = false;
    power.setLoadEnabled(txLoad, false);
    ++txCount;
    std::uint8_t byte = shifting;
    sim::Tick when = cursor.now();
    for (const auto &listener : txListeners)
        listener(byte, when);
}

void
Uart::receiveByte(std::uint8_t byte)
{
    rxFifo.push_back(byte);
    while (rxFifo.size() > cfg.rxFifoDepth)
        rxFifo.pop_front();
}

void
Uart::powerLost()
{
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    busy = false;
    power.setLoadEnabled(txLoad, false);
    rxFifo.clear();
}

} // namespace edb::mcu
