#include "mcu/debug_port.hh"

#include "mcu/mmio_map.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace edb::mcu {

DebugPort::DebugPort(sim::Simulator &simulator,
                     std::string component_name,
                     sim::TimeCursor &time_cursor,
                     energy::PowerSystem &power_sys,
                     DebugPortConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      cfg(config),
      dbgUart(simulator, component_name + ".uart", time_cursor,
              power_sys, config.uart)
{
    if (cfg.markerLines == 0 || cfg.markerLines > 16)
        sim::fatal("DebugPort: marker lines must be in 1..16");
}

std::uint32_t
DebugPort::maxMarkerId() const
{
    return (1u << cfg.markerLines) - 1;
}

void
DebugPort::installMmio(mem::MmioRegion &mmio)
{
    mmio.addRegister(
        mmio::marker, name() + ".marker", nullptr,
        [this](std::uint32_t v) { pulseMarker(v); });
    mmio.addRegister(
        mmio::dbgReq, name() + ".req",
        [this] { return req ? 1u : 0u; },
        [this](std::uint32_t v) { setReq(v & 1u); });
    mmio.addRegister(
        mmio::bkptMask, name() + ".bkptmask",
        [this] { return bkptMask; }, nullptr);
    dbgUart.installMmio(mmio, mmio::dbgUartTx, mmio::dbgUartStatus,
                        mmio::dbgUartRx);
}

void
DebugPort::addMarkerListener(MarkerListener listener)
{
    markerListeners.push_back(std::move(listener));
}

void
DebugPort::addReqListener(ReqListener listener)
{
    reqListeners.push_back(std::move(listener));
}

void
DebugPort::pulseMarker(std::uint32_t id)
{
    // Ids above the line capacity alias onto the available lines,
    // as they would electrically; id 0 emits no pulse.
    std::uint32_t encoded = id & maxMarkerId();
    if (encoded == 0)
        return;
    ++markers;
    sim::Tick when = cursor.now();
    for (const auto &listener : markerListeners)
        listener(encoded, when);
}

void
DebugPort::setReq(bool level)
{
    if (req == level)
        return;
    req = level;
    sim::Tick when = cursor.now();
    for (const auto &listener : reqListeners)
        listener(level, when);
}

void
DebugPort::powerLost()
{
    setReq(false);
    dbgUart.powerLost();
}

void
DebugPort::saveState(sim::SnapshotWriter &w) const
{
    w.section("dbgport");
    w.boolean(req);
    w.u32(bkptMask);
    w.u64(markers);
    dbgUart.saveState(w);
}

void
DebugPort::restoreState(sim::SnapshotReader &r,
                        sim::EventRearmer &rearmer)
{
    r.section("dbgport");
    req = r.boolean(); // raw: restored observers re-attach fresh
    bkptMask = r.u32();
    markers = r.u64();
    dbgUart.restoreState(r, rearmer);
}

} // namespace edb::mcu
