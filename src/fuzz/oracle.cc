#include "fuzz/oracle.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "analysis/analyzer.hh"
#include "analysis/cost_model.hh"
#include "energy/harvester.hh"
#include "isa/assembler.hh"
#include "mem/nv_audit.hh"
#include "sim/fault.hh"
#include "sim/replay.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "target/wisp.hh"

namespace edb::fuzz {

namespace {

constexpr sim::Tick pollQuantum = sim::oneMs;
constexpr std::uint32_t opBrownOut = 1;

/** Thevenin source parameters derived from the case seed: some
 *  worlds sustain the core, others sawtooth naturally on top of the
 *  forced brown-outs. */
struct SrcParams
{
    double voc;
    double ohms;
};

SrcParams
sourceParams(std::uint64_t seed)
{
    sim::Rng rng(seed ^ 0x68617276ULL); // "harv"
    SrcParams p;
    p.voc = rng.uniform(2.8, 3.3);
    p.ohms = rng.uniform(400.0, 2500.0);
    return p;
}

mem::NvAuditConfig
auditConfigFor(const target::Wisp &wisp)
{
    mem::NvAuditConfig cfg;
    cfg.checkpointBase = wisp.config().mcu.checkpointBase;
    cfg.checkpointSpan = 2 * wisp.config().mcu.checkpointSlotSize;
    return cfg;
}

target::WispConfig
worldConfig(const OracleCase &c, bool reference, bool checkpointing,
            bool crash_commit)
{
    target::WispConfig config;
    config.power.capacitanceF = c.capacitanceF;
    config.power.initialVolts = c.initialVolts;
    config.mcu.checkpointingEnabled = checkpointing;
    if (crash_commit) {
        // The crash-anywhere world: sealed frames, commits that can
        // tear at any NV word.
        config.mcu.commitDiscipline = mcu::CommitDiscipline::Sealed;
        config.mcu.interruptibleCommit = true;
    }
    if (reference) {
        config.mcu.predecodeCache = false;
        config.mcu.flatDispatch = false;
        config.mcu.batchedDrain = false;
        config.mcu.batchedSlices = false;
        config.mcu.superblocks = false;
        config.power.fastIntegration = false;
    }
    return config;
}

/** One oracle leg: simulator + harvester + target (+ auditor) with
 *  the case's brown-out schedule armed. */
struct World
{
    struct Options
    {
        bool reference = false;
        bool checkpointing = true;
        bool withAuditor = false;
        /** false for snapshot-restore legs (no start, no arm). */
        bool startAndArm = true;
        /** Sealed + interruptible commits (crash-anywhere leg). */
        bool crashCommit = false;
        /** NV torn-write fault plan; enabled ⇒ a FaultInjector is
         *  built and wired into the commit path. */
        sim::FaultPlan nvPlan = {};
    };

    sim::Simulator sim;
    energy::TheveninHarvester src;
    target::Wisp wisp;
    std::unique_ptr<mem::NvAuditor> aud;
    std::unique_ptr<sim::FaultInjector> fault;
    sim::ScheduleLog log;
    sim::SchedulePlayer player;

    /** Coverage probe state (valid while instrumented). */
    mem::Addr lastPc = 0;
    std::uint64_t prevBoots = 0;
    std::uint64_t prevCheckpoints = 0;
    std::uint64_t prevRestores = 0;
    std::uint64_t prevFaults = 0;
    /** Audit-completeness probe: true while the WAR gadget has
     *  completed in the current power-on interval (its open record
     *  survives until a loss), and losses observed in that window. */
    mem::Addr warDonePc = 0;
    bool gadgetLive = false;
    std::uint64_t lossAfterGadget = 0;
    /** Extra per-instruction probe run by the instrumented tracer
     *  (etap leg: persist-boundary charge sampling). */
    std::function<void(mem::Addr, const isa::Instr &)> preInstr;

    World(const OracleCase &c, const isa::Program &prog,
          const Options &opt)
        : sim(c.seed),
          src(sourceParams(c.seed).voc, sourceParams(c.seed).ohms),
          wisp(sim, "wisp", &src, nullptr,
               worldConfig(c, opt.reference, opt.checkpointing,
                           opt.crashCommit)),
          player(sim)
    {
        if (opt.nvPlan.enabled) {
            fault = std::make_unique<sim::FaultInjector>(
                sim, "fault", opt.nvPlan);
            // A forced brown-out models the supply collapsing in the
            // middle of an NV program pulse: the capacitor is yanked
            // below the brown-out threshold and the in-flight commit
            // word tears.
            fault->armBrownOuts([this] {
                wisp.power().capacitor().setVoltage(0.5);
            });
            mcu::Mcu::NvCommitHooks hooks;
            hooks.onCommitWord = [this] { fault->onNvCommitWord(); };
            hooks.onTornWord = [this](std::uint32_t &word) {
                return fault->onTornWord(word);
            };
            wisp.mcu().setNvCommitHooks(hooks);
        }
        if (opt.withAuditor) {
            aud = std::make_unique<mem::NvAuditor>(auditConfigFor(wisp),
                                                   wisp.framRegion());
            wisp.mcu().setAuditor(aud.get());
            wisp.memoryMap().setWriteHook(&mem::NvAuditor::rawWriteHook,
                                          aud.get());
        }
        // Passive observer, attached to every leg for symmetry: a
        // loss while the gadget's record is open is exactly the
        // window the auditor must flag. (Boot counts cannot be used
        // here -- they count turn-ons, and the first boot precedes
        // the gadget rather than following it.)
        wisp.power().addPowerListener([this](bool on) {
            if (!on) {
                if (gadgetLive)
                    ++lossAfterGadget;
                gadgetLive = false;
            }
        });
        for (const BrownOut &b : c.schedule)
            log.record(b.at, opBrownOut, b.volts);
        wisp.flash(prog);
        if (opt.startAndArm) {
            wisp.start();
            armSchedule(0);
        }
    }

    void
    armSchedule(sim::Tick from)
    {
        player.arm(log, from, [this](const sim::ScheduleEntry &e) {
            if (e.op == opBrownOut)
                wisp.power().capacitor().setVoltage(e.arg);
        });
    }

    /** Install the coverage tracer (and the war_done watchpoint). */
    void
    instrument(Coverage *cov)
    {
        prevBoots = wisp.power().bootCount();
        prevCheckpoints = wisp.mcu().checkpointCount();
        prevRestores = wisp.mcu().restoreCount();
        prevFaults = wisp.mcu().faultCount();
        wisp.mcu().setTracer([this, cov](mem::Addr pc,
                                         const isa::Instr &i) {
            lastPc = pc;
            if (preInstr)
                preInstr(pc, i);
            if (warDonePc != 0 && pc == warDonePc)
                gadgetLive = true;
            if (cov == nullptr)
                return;
            cov->noteExec(i.op);
            switch (i.op) {
              case isa::Opcode::Ldw:
              case isa::Opcode::Ldb:
              case isa::Opcode::Stw:
              case isa::Opcode::Stb: {
                mem::Addr ea = wisp.mcu().reg(i.rs) +
                               static_cast<std::uint32_t>(i.imm);
                if (ea >= target::layout::mmioBase &&
                    ea < target::layout::mmioBase +
                             target::layout::mmioSize) {
                    cov->noteMem(i.op, MemClass::Mmio);
                    cov->noteMmio(ea & ~mem::Addr{3});
                } else if (ea >= target::layout::framBase &&
                           ea < target::layout::framBase +
                                    target::layout::framSize) {
                    cov->noteMem(i.op, MemClass::Fram);
                } else if (ea >= target::layout::sramBase &&
                           ea < target::layout::sramBase +
                                    target::layout::sramSize) {
                    cov->noteMem(i.op, MemClass::Sram);
                }
                break;
              }
              case isa::Opcode::Push:
              case isa::Opcode::Pop:
              case isa::Opcode::Call:
              case isa::Opcode::Callr:
              case isa::Opcode::Ret:
                cov->noteMem(i.op, MemClass::Sram);
                break;
              default:
                break;
            }
        });
    }

    /** Lifecycle-edge poll, run between quanta. */
    void
    pollEdges(Coverage *cov)
    {
        std::uint64_t boots = wisp.power().bootCount();
        if (boots > prevBoots) {
            if (cov != nullptr) {
                if (prevBoots == 0)
                    cov->noteEdge(Edge::Boot);
                if (boots > 1 || prevBoots > 0) {
                    cov->noteEdge(Edge::Reboot);
                    cov->noteRebootAt(lastPc);
                }
            }
            prevBoots = boots;
        }
        if (cov == nullptr)
            return;
        std::uint64_t v;
        if ((v = wisp.mcu().checkpointCount()) > prevCheckpoints) {
            cov->noteEdge(Edge::Checkpoint);
            prevCheckpoints = v;
        }
        if ((v = wisp.mcu().restoreCount()) > prevRestores) {
            cov->noteEdge(Edge::Restore);
            prevRestores = v;
        }
        if ((v = wisp.mcu().faultCount()) > prevFaults) {
            cov->noteEdge(Edge::Fault);
            prevFaults = v;
        }
        if (wisp.state() == mcu::McuState::Halted)
            cov->noteEdge(Edge::Halt);
    }

    /** Advance to `until`, polling for edges every quantum. */
    void
    runTo(sim::Tick until, Coverage *cov)
    {
        while (sim.now() < until) {
            sim.runFor(std::min(pollQuantum, until - sim.now()));
            pollEdges(cov);
        }
    }
};

/** Everything architecturally observable at the end of a run. */
struct Digest
{
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    std::uint64_t reboots = 0;
    std::uint64_t faults = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t boots = 0;
    mem::Addr pc = 0;
    std::uint8_t state = 0;
    std::uint32_t flags = 0;
    std::array<std::uint32_t, isa::numRegs> regs{};
    double volts = 0.0;
    sim::Tick now = 0;
    std::uint32_t framCrc = 0;
    std::uint32_t sramCrc = 0;

    bool operator==(const Digest &) const = default;
};

Digest
digestOf(World &w)
{
    Digest d;
    const auto &m = w.wisp.mcu();
    d.instrs = m.instrCount();
    d.cycles = m.cycleCount();
    d.reboots = m.rebootCount();
    d.faults = m.faultCount();
    d.checkpoints = m.checkpointCount();
    d.restores = m.restoreCount();
    d.boots = w.wisp.power().bootCount();
    d.pc = m.pc();
    d.state = static_cast<std::uint8_t>(m.state());
    d.flags = m.flags().pack();
    for (unsigned i = 0; i < isa::numRegs; ++i)
        d.regs[i] = m.reg(i);
    d.volts = w.wisp.power().voltageNoAdvance();
    d.now = w.sim.now();
    const mem::Ram &fram = w.wisp.framRegion();
    d.framCrc = sim::crc32(fram.data(), fram.size());
    const mem::Ram &sram = w.wisp.sramRegion();
    d.sramCrc = sim::crc32(sram.data(), sram.size());
    return d;
}

std::string
digestDiff(const char *nameA, const Digest &a, const char *nameB,
           const Digest &b)
{
    std::ostringstream s;
    s << nameA << " vs " << nameB << " diverged:";
    auto field = [&](const char *n, auto va, auto vb) {
        if (va != vb)
            s << " " << n << "=" << va << "/" << vb;
    };
    field("instrs", a.instrs, b.instrs);
    field("cycles", a.cycles, b.cycles);
    field("reboots", a.reboots, b.reboots);
    field("faults", a.faults, b.faults);
    field("checkpoints", a.checkpoints, b.checkpoints);
    field("restores", a.restores, b.restores);
    field("boots", a.boots, b.boots);
    field("pc", a.pc, b.pc);
    field("state", unsigned(a.state), unsigned(b.state));
    field("flags", a.flags, b.flags);
    for (unsigned i = 0; i < isa::numRegs; ++i)
        if (a.regs[i] != b.regs[i])
            s << " r" << i << "=" << a.regs[i] << "/" << b.regs[i];
    field("volts", a.volts, b.volts);
    field("now", a.now, b.now);
    field("framCrc", a.framCrc, b.framCrc);
    field("sramCrc", a.sramCrc, b.sramCrc);
    return s.str();
}

OracleOutcome
runFastRef(const OracleCase &c, Coverage *cov)
{
    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = c.checkpointing;

    World fast(c, prog, opt);
    fast.instrument(cov);
    fast.runTo(c.horizon, cov);

    opt.reference = true;
    World ref(c, prog, opt);
    ref.instrument(nullptr); // symmetric tracer attachment
    ref.runTo(c.horizon, nullptr);

    Digest a = digestOf(fast);
    Digest b = digestOf(ref);
    OracleOutcome out;
    if (!(a == b)) {
        out.failed = true;
        out.detail = digestDiff("fast", a, "reference", b);
    }
    return out;
}

OracleOutcome
runSnapshot(const OracleCase &c, Coverage *cov)
{
    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = c.checkpointing;

    World w(c, prog, opt);
    w.instrument(cov);
    w.runTo(c.horizon / 2, cov);
    sim::SnapshotWriter writer;
    w.wisp.saveState(writer);
    std::vector<std::uint8_t> image = writer.finish();
    sim::Tick snapTick = w.sim.now();
    w.runTo(c.horizon, cov);
    Digest orig = digestOf(w);

    World::Options ropt = opt;
    ropt.startAndArm = false;
    World r(c, prog, ropt);
    sim::SnapshotReader reader;
    OracleOutcome out;
    if (!reader.load(std::move(image))) {
        out.failed = true;
        out.detail = "snapshot image failed to load";
        return out;
    }
    sim::EventRearmer rearmer(r.sim);
    r.wisp.restoreState(reader, rearmer);
    if (!reader.ok()) {
        out.failed = true;
        out.detail = "snapshot restore reported corruption";
        return out;
    }
    rearmer.flush();
    r.armSchedule(snapTick);
    r.instrument(nullptr);
    r.runTo(c.horizon, nullptr);
    Digest resumed = digestOf(r);

    if (!(orig == resumed)) {
        out.failed = true;
        out.detail = digestDiff("uninterrupted", orig, "resumed",
                                resumed);
    }
    return out;
}

OracleOutcome
runReplay(const OracleCase &c, Coverage *cov)
{
    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = c.checkpointing;

    World a(c, prog, opt);
    a.instrument(cov);
    a.runTo(c.horizon, cov);

    World b(c, prog, opt);
    b.instrument(nullptr);
    b.runTo(c.horizon, nullptr);

    Digest da = digestOf(a);
    Digest db = digestOf(b);
    OracleOutcome out;
    if (!(da == db)) {
        out.failed = true;
        out.detail = digestDiff("run1", da, "run2", db);
    }
    return out;
}

OracleOutcome
runAudit(const OracleCase &c, Coverage *cov)
{
    OracleOutcome out;

    // Soundness: the WAR-free clean program must audit clean.
    {
        isa::Program prog = isa::assemble(c.program);
        World::Options opt;
        opt.checkpointing = c.checkpointing;
        opt.withAuditor = true;
        World w(c, prog, opt);
        w.instrument(cov);
        w.runTo(c.horizon, cov);
        if (w.aud->violationCount() != 0) {
            out.failed = true;
            std::ostringstream s;
            s << "auditor flagged a WAR-free program ("
              << w.aud->violationCount() << " violations";
            if (!w.aud->findings().empty())
                s << "; first: "
                  << mem::nvFindingText(w.aud->findings().front());
            s << ")";
            out.detail = s.str();
            return out;
        }
    }

    // Completeness: the seeded-WAR mutant must be flagged whenever a
    // power loss exposed the hazard. The mutant runs without
    // checkpoints so every loss after `war_done` is a violation.
    if (c.mutant.empty()) {
        out.inconclusive = true;
        out.detail = "no mutant listing";
        return out;
    }
    isa::Program prog = isa::assemble(c.mutant);
    World::Options opt;
    opt.checkpointing = false;
    opt.withAuditor = true;
    World w(c, prog, opt);
    w.warDonePc = prog.symbol("war_done");
    w.instrument(cov);
    w.runTo(c.horizon, cov);
    if (w.lossAfterGadget == 0) {
        out.inconclusive = true;
        out.detail = "no power loss after the WAR gadget ran";
        return out;
    }
    if (w.aud->violationCount() == 0) {
        out.failed = true;
        std::ostringstream s;
        s << "auditor missed the seeded WAR hazard ("
          << w.lossAfterGadget << " losses after war_done)";
        out.detail = s.str();
    }
    return out;
}

OracleOutcome
runSuperblock(const OracleCase &c, Coverage *cov)
{
    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = c.checkpointing;

    // Superblock leg: deliberately NOT instrumented. A tracer must
    // observe every retired instruction, so attaching one drops the
    // core to per-instruction stepping and the oracle would compare
    // the interpreter against itself. (This is also why FastRef's
    // instrumented fast leg never dispatches superblocks.)
    World sb(c, prog, opt);
    sb.runTo(c.horizon, nullptr);

    // The reference leg carries the coverage tracer; bit-identity
    // must hold across the instrumentation difference too.
    opt.reference = true;
    World ref(c, prog, opt);
    ref.instrument(cov);
    ref.runTo(c.horizon, cov);

    Digest a = digestOf(sb);
    Digest b = digestOf(ref);
    OracleOutcome out;
    if (!(a == b)) {
        out.failed = true;
        out.detail = digestDiff("superblock", a, "reference", b);
    }
    return out;
}

OracleOutcome
runCrashAnywhere(const OracleCase &c, Coverage *cov)
{
    OracleOutcome out;
    if (!c.checkpointing) {
        out.inconclusive = true;
        out.detail = "case runs without checkpointing";
        return out;
    }

    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = true;
    opt.withAuditor = true;
    opt.crashCommit = true;
    opt.nvPlan.enabled = true;
    opt.nvPlan.seed = c.seed ^ 0x63726173ULL; // "cras"
    {
        // Seed-derived tear point: any word of any commit burst. The
        // range comfortably covers a full frame (23 header/seal words
        // + the stack image), so later commits get hit too.
        sim::Rng rng(opt.nvPlan.seed);
        opt.nvPlan.nvTearAtCommitWord = rng.uniformInt(1, 120);
        opt.nvPlan.nvTornCorruptProb = 0.5;
    }

    World w(c, prog, opt);
    w.instrument(cov);
    w.runTo(c.horizon, cov);

    if (w.aud->unsealedRestoreCount() != 0) {
        out.failed = true;
        std::ostringstream s;
        s << "recovery restored an unsealed frame ("
          << w.aud->unsealedRestoreCount()
          << " hybrid restores; tear at commit word "
          << opt.nvPlan.nvTearAtCommitWord << ", "
          << w.fault->stats().nvTears << " tears, "
          << w.wisp.mcu().restoreCount() << " restores)";
        out.detail = s.str();
        return out;
    }
    if (w.fault->stats().nvTears == 0) {
        out.inconclusive = true;
        std::ostringstream s;
        s << "no tear landed (tear word "
          << opt.nvPlan.nvTearAtCommitWord << ", "
          << w.fault->stats().nvCommitWords
          << " commit words observed)";
        out.detail = s.str();
    }
    return out;
}

/** Etap: the static energy analyzer vs. simulated ground truth (see
 *  the header). One instrumented world; the analyzer's per-boot
 *  worst-case bound is compared against every measured
 *  power-on→first-persist drain, and its starvation verdict against
 *  the observed persist history. */
OracleOutcome
runEtap(const OracleCase &c, Coverage *cov)
{
    OracleOutcome out;
    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = c.checkpointing;
    World w(c, prog, opt);

    analysis::CostModel m = analysis::CostModel::fromWisp(w.wisp);
    SrcParams sp = sourceParams(c.seed);
    analysis::AnalyzerOptions aopt;
    aopt.maxSourceVolts = sp.voc;
    // The harvest noise is a multiplier 1+N(0,0.05) on the inflow;
    // 1.4 is an 8-sigma ceiling. Peak inflow is at the brown-out
    // floor, where the Thevenin drop is largest.
    aopt.maxInflowAmps = 1.4 * (sp.voc - m.brownOutVolts) / sp.ohms;
    aopt.expectedInflowAmps =
        (sp.voc - 0.5 * (m.turnOnVolts + m.brownOutVolts)) / sp.ohms;
    analysis::Report rep = analysis::analyze(prog, m, aopt);

    bool all_bounded = !rep.regions.empty();
    double worst_region = 0.0;
    for (const analysis::RegionInfo &r : rep.regions) {
        if (!r.bounded)
            all_bounded = false;
        worst_region = std::max(worst_region, r.chargeMax);
    }

    // Slack on top of the static bound, covering measurement lag
    // only: a checkpoint persist is detected one instruction late —
    // at worst that instruction is itself a full commit burst, run
    // with the LED left on — and a UART frame from the last
    // pre-persist store may still be shifting. Halts are sampled at
    // the halt instruction itself, so they carry no lag.
    double commit_seconds = m.restoreChargeMax() / m.activeAmps;
    double slack = (commit_seconds + 64.0 * m.cyclePeriod) *
                       (m.activeAmps + m.ledAmps) +
                   m.uartFrameCharge() + m.dbgUartFrameCharge();
    double bound =
        m.bootCharge() + m.restoreChargeMax() + worst_region + slack;

    // Ground truth: charge drained from each power-on to the first
    // persist (checkpoint commit or halt) of that interval.
    auto charge_out = [&] {
        return w.wisp.power().cumulativeChargeOut();
    };
    sim::Tick last_forced = 0;
    for (const BrownOut &b : c.schedule)
        last_forced = std::max(last_forced, b.at);

    double window_start = charge_out();
    bool window_open = true;
    std::uint64_t last_ck = w.wisp.mcu().checkpointCount();
    double worst_observed = -1.0;
    unsigned observed_windows = 0;
    unsigned stall_boots = 0;
    bool ever_halted = false;

    auto record = [&](double obs) {
        worst_observed = std::max(worst_observed, obs);
        ++observed_windows;
        window_open = false;
    };
    w.wisp.power().addPowerListener([&](bool on) {
        if (on) {
            window_start = charge_out();
            window_open = true;
        } else {
            // A boot that ended with no persist: only un-forced
            // losses count toward the stall verdict.
            if (window_open && w.sim.now() > last_forced)
                ++stall_boots;
            window_open = false;
        }
    });
    w.preInstr = [&](mem::Addr, const isa::Instr &i) {
        std::uint64_t ck = w.wisp.mcu().checkpointCount();
        if (window_open && ck != last_ck)
            record(charge_out() - window_start);
        last_ck = ck;
        // The tracer fires after an instruction's cycles are billed,
        // so sampling at the HALT opcode itself excludes post-halt
        // drain (a program may halt with the LED left burning, and
        // the next poll is up to a millisecond away).
        if (i.op == isa::Opcode::Halt) {
            ever_halted = true;
            if (window_open)
                record(charge_out() - window_start);
        }
    };
    w.instrument(cov);
    w.runTo(c.horizon, cov);

    bool progress = ever_halted || w.wisp.mcu().checkpointCount() > 0;
    std::ostringstream s;
    s << "verdict=" << analysis::verdictName(rep.verdict)
      << " bound=" << bound << " worstObserved=" << worst_observed
      << " windows=" << observed_windows << " stallBoots="
      << stall_boots << " checkpoints="
      << w.wisp.mcu().checkpointCount() << " halted=" << ever_halted;

    // Soundness: no observed boot-to-persist drain may exceed the
    // static bound (only claimable when every region is bounded).
    if (all_bounded && observed_windows > 0 &&
        worst_observed > bound) {
        out.failed = true;
        out.detail = "static bound unsound: " + s.str();
        return out;
    }
    // Starvation, both directions.
    if (rep.verdict == analysis::Verdict::Starves && progress) {
        out.failed = true;
        out.detail = "starvation false positive: " + s.str();
        return out;
    }
    if (rep.verdict == analysis::Verdict::Completes && !progress &&
        stall_boots >= 6) {
        out.failed = true;
        out.detail = "starvation false negative: " + s.str();
        return out;
    }

    bool soundness_ran = all_bounded && observed_windows > 0;
    bool starve_ran =
        rep.verdict == analysis::Verdict::Starves ||
        (rep.verdict == analysis::Verdict::Completes &&
         (progress || stall_boots >= 6));
    if (!soundness_ran && !starve_ran)
        out.inconclusive = true;
    // Always report the comparison (corpus emission steers on it).
    out.detail = s.str();
    return out;
}

} // namespace

const char *
oracleName(OracleId id)
{
    switch (id) {
      case OracleId::FastRef: return "fastref";
      case OracleId::Snapshot: return "snapshot";
      case OracleId::Replay: return "replay";
      case OracleId::Audit: return "audit";
      case OracleId::Superblock: return "superblock";
      case OracleId::CrashAnywhere: return "crashanywhere";
      case OracleId::Etap: return "etap";
    }
    return "unknown";
}

std::optional<OracleId>
oracleFromName(const std::string &name)
{
    for (unsigned i = 0; i < numOracles; ++i)
        if (name == oracleName(static_cast<OracleId>(i)))
            return static_cast<OracleId>(i);
    return std::nullopt;
}

OracleCase
makeOracleCase(const CaseSpec &spec)
{
    OracleCase c;
    c.program = renderProgram(spec);
    c.mutant = renderWarMutant(spec);
    c.seed = spec.worldSeed;
    c.checkpointing = spec.checkpointing;
    c.horizon = spec.horizon;
    c.schedule = spec.schedule;
    return c;
}

OracleOutcome
runOracle(OracleId id, const OracleCase &c, Coverage *coverage)
{
    switch (id) {
      case OracleId::FastRef: return runFastRef(c, coverage);
      case OracleId::Snapshot: return runSnapshot(c, coverage);
      case OracleId::Replay: return runReplay(c, coverage);
      case OracleId::Audit: return runAudit(c, coverage);
      case OracleId::Superblock: return runSuperblock(c, coverage);
      case OracleId::CrashAnywhere:
        return runCrashAnywhere(c, coverage);
      case OracleId::Etap: return runEtap(c, coverage);
    }
    return {};
}

std::uint64_t
auditViolations(const OracleCase &c)
{
    isa::Program prog = isa::assemble(c.program);
    World::Options opt;
    opt.checkpointing = c.checkpointing;
    opt.withAuditor = true;
    World w(c, prog, opt);
    w.runTo(c.horizon, nullptr);
    return w.aud->violationCount();
}

} // namespace edb::fuzz
