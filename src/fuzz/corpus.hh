/**
 * @file
 * On-disk regression artifacts for minimized fuzz failures.
 *
 * A `.case` file is a line-oriented text record: header comments,
 * `key value` lines for the world knobs and schedule, then the raw
 * program (and mutant) listings framed by their line counts. The
 * format is deliberately dumb — diffable in review, hand-editable,
 * and parsed without any dependency — because each artifact is a
 * permanent regression test replayed by tests/test_fuzz_corpus.cc.
 */

#ifndef EDB_FUZZ_CORPUS_HH
#define EDB_FUZZ_CORPUS_HH

#include <optional>
#include <string>

#include "fuzz/oracle.hh"

namespace edb::fuzz {

/** One checked-in regression case. */
struct Artifact
{
    OracleId oracle = OracleId::FastRef;
    OracleCase oracleCase;
    /** Free-text provenance ("seed 7 shrunk 120->14", ...). */
    std::string note;
};

/** Serialize to the `.case` text format. */
std::string artifactToText(const Artifact &artifact);

/** Parse; on failure returns nullopt and sets `error`. */
std::optional<Artifact> artifactFromText(const std::string &text,
                                         std::string *error = nullptr);

/** File round-trip helpers. */
bool saveArtifact(const Artifact &artifact, const std::string &path);
std::optional<Artifact> loadArtifact(const std::string &path,
                                     std::string *error = nullptr);

} // namespace edb::fuzz

#endif // EDB_FUZZ_CORPUS_HH
