/**
 * @file
 * Failure minimizer for generated cases.
 *
 * Delta-debugging over the structure the generator already exposes:
 * because every element is self-contained (fuzz/generator.hh), any
 * subset of the element list still assembles and runs, so shrinking
 * is plain list reduction — remove element chunks (ddmin-style,
 * halving granularity), then flatten loops, strip snippet lines and
 * drop schedule entries, re-checking the caller's predicate after
 * every candidate. The predicate is the failure being minimized
 * ("oracle X still fails", or a synthetic marker for the shrinker's
 * own test); the budget bounds total predicate evaluations since
 * each one replays a full simulation.
 */

#ifndef EDB_FUZZ_SHRINK_HH
#define EDB_FUZZ_SHRINK_HH

#include <functional>

#include "fuzz/generator.hh"

namespace edb::fuzz {

/** Returns true when the candidate still exhibits the failure. */
using ShrinkPredicate = std::function<bool(const CaseSpec &)>;

struct ShrinkResult
{
    CaseSpec spec;
    /** Predicate evaluations spent. */
    unsigned runs = 0;
    /** Instruction counts before/after. */
    std::size_t beforeInstrs = 0;
    std::size_t afterInstrs = 0;
};

/**
 * Minimize `failing` while `stillFails` holds. `failing` itself is
 * assumed to satisfy the predicate (it is not re-checked).
 */
ShrinkResult shrinkCase(const CaseSpec &failing,
                        const ShrinkPredicate &stillFails,
                        unsigned maxRuns = 200);

} // namespace edb::fuzz

#endif // EDB_FUZZ_SHRINK_HH
