#include "fuzz/generator.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "mcu/mmio_map.hh"
#include "sim/rng.hh"

namespace edb::fuzz {

namespace {

using sim::Rng;

/*
 * Register classes. Data registers may hold values loaded from
 * memory (and so may carry auditor taint); they are never used as a
 * store base. Pointer registers are only ever written by `la` (which
 * clears taint), so every store base is provably untainted. r10 is
 * the loop counter, r12 belongs to the WAR gadget, r0 is avoided
 * because CHKPT writes its status there, r15 is the stack pointer.
 */
constexpr unsigned dataRegs[] = {1, 2, 3, 4, 5, 11, 13, 14};
constexpr unsigned framPtrA = 6;
constexpr unsigned framPtrB = 7;
constexpr unsigned sramPtr = 8;
constexpr unsigned mmioPtr = 9;
constexpr unsigned loopReg = 10;

unsigned
dataReg(Rng &rng)
{
    return dataRegs[rng.uniformInt(0, 7)];
}

/** Word-aligned offset inside a scratch window. */
std::int32_t
wordOff(Rng &rng)
{
    return static_cast<std::int32_t>(
               rng.uniformInt(0, (gen_layout::scratchBytes / 4) - 1)) *
           4;
}

std::int32_t
byteOff(Rng &rng)
{
    return static_cast<std::int32_t>(
        rng.uniformInt(0, gen_layout::scratchBytes - 1));
}

std::string
r(unsigned n)
{
    return "r" + std::to_string(n);
}

std::string
memOp(unsigned base, std::int32_t off)
{
    std::ostringstream s;
    s << "[" << r(base);
    if (off != 0)
        s << " + " << off;
    s << "]";
    return s.str();
}

/** MMIO registers that are safe to poke from generated programs
 *  (no debugger handshake lines, no checkpoint control). */
struct MmioReg
{
    std::uint32_t addr;
    bool writable;
};
constexpr MmioReg mmioStoreRegs[] = {
    {mcu::mmio::gpioOut, true},    {mcu::mmio::gpioToggle, true},
    {mcu::mmio::uart0Tx, true},    {mcu::mmio::marker, true},
    {mcu::mmio::led, true},
};
constexpr MmioReg mmioLoadRegs[] = {
    {mcu::mmio::gpioIn, false},      {mcu::mmio::gpioOut, false},
    {mcu::mmio::uart0Status, false}, {mcu::mmio::cycleLo, false},
    {mcu::mmio::led, false},
};

Element
snippet(std::vector<std::string> lines)
{
    Element e;
    e.kind = Element::Kind::Snippet;
    e.lines = std::move(lines);
    return e;
}

/** One random straight-line snippet (self-contained: any pointer it
 *  needs is established with `la` inside the snippet). */
Element
makeSnippet(Rng &rng)
{
    std::vector<std::string> lines;
    auto emit = [&](const std::string &l) { lines.push_back(l); };

    switch (rng.uniformInt(0, 12)) {
      case 0: { // ALU immediate
        static const char *ops[] = {"li",   "addi", "andi", "ori",
                                    "xori", "shli", "shri"};
        const char *op = ops[rng.uniformInt(0, 6)];
        unsigned rd = dataReg(rng);
        std::ostringstream s;
        if (std::string(op) == "li") {
            s << "li " << r(rd) << ", " << rng.uniformInt(-32768, 32767);
        } else if (std::string(op) == "shli" ||
                   std::string(op) == "shri") {
            s << op << " " << r(rd) << ", " << r(dataReg(rng)) << ", "
              << rng.uniformInt(0, 31);
        } else if (std::string(op) == "addi") {
            s << op << " " << r(rd) << ", " << r(dataReg(rng)) << ", "
              << rng.uniformInt(-256, 255);
        } else {
            s << op << " " << r(rd) << ", " << r(dataReg(rng)) << ", "
              << rng.uniformInt(0, 0xFFFF);
        }
        emit(s.str());
        break;
      }
      case 1: { // ALU register
        static const char *ops[] = {"add", "sub", "mul", "and",  "or",
                                    "xor", "shl", "shr", "sar",  "divu",
                                    "remu"};
        std::ostringstream s;
        s << ops[rng.uniformInt(0, 10)] << " " << r(dataReg(rng)) << ", "
          << r(dataReg(rng)) << ", " << r(dataReg(rng));
        emit(s.str());
        break;
      }
      case 2: { // mov / cmp
        std::ostringstream s;
        if (rng.chance(0.5))
            s << "mov " << r(dataReg(rng)) << ", " << r(dataReg(rng));
        else if (rng.chance(0.5))
            s << "cmp " << r(dataReg(rng)) << ", " << r(dataReg(rng));
        else
            s << "cmpi " << r(dataReg(rng)) << ", "
              << rng.uniformInt(-100, 100);
        emit(s.str());
        break;
      }
      case 3: { // FRAM word store
        unsigned rv = dataReg(rng);
        emit("la " + r(framPtrA) + ", FSCRATCH");
        emit("li " + r(rv) + ", " +
             std::to_string(rng.uniformInt(-1000, 1000)));
        emit("stw " + r(rv) + ", " + memOp(framPtrA, wordOff(rng)));
        break;
      }
      case 4: { // FRAM word load
        emit("la " + r(framPtrB) + ", FSCRATCH");
        emit("ldw " + r(dataReg(rng)) + ", " +
             memOp(framPtrB, wordOff(rng)));
        break;
      }
      case 5: { // FRAM byte traffic
        unsigned rv = dataReg(rng);
        emit("la " + r(framPtrA) + ", FSCRATCH");
        if (rng.chance(0.5)) {
            emit("li " + r(rv) + ", " +
                 std::to_string(rng.uniformInt(0, 255)));
            emit("stb " + r(rv) + ", " + memOp(framPtrA, byteOff(rng)));
        } else {
            emit("ldb " + r(rv) + ", " + memOp(framPtrA, byteOff(rng)));
        }
        break;
      }
      case 6: { // SRAM traffic (word store + load back)
        unsigned rv = dataReg(rng);
        std::int32_t off = wordOff(rng);
        emit("la " + r(sramPtr) + ", SSCRATCH");
        emit("stw " + r(rv) + ", " + memOp(sramPtr, off));
        emit("ldw " + r(dataReg(rng)) + ", " + memOp(sramPtr, off));
        break;
      }
      case 7: { // benign FRAM read-modify-write (COUNTER += 1)
        unsigned rv = dataReg(rng);
        std::int32_t off = wordOff(rng);
        emit("la " + r(framPtrA) + ", FSCRATCH");
        emit("ldw " + r(rv) + ", " + memOp(framPtrA, off));
        emit("addi " + r(rv) + ", " + r(rv) + ", 1");
        emit("stw " + r(rv) + ", " + memOp(framPtrA, off));
        break;
      }
      case 8: { // MMIO store
        const MmioReg &m =
            mmioStoreRegs[rng.uniformInt(0, std::size(mmioStoreRegs) - 1)];
        unsigned rv = dataReg(rng);
        emit("la " + r(mmioPtr) + ", MMIO");
        emit("li " + r(rv) + ", " +
             std::to_string(rng.uniformInt(0, 255)));
        emit("stw " + r(rv) + ", " +
             memOp(mmioPtr, static_cast<std::int32_t>(
                                m.addr - mcu::mmio::base)));
        break;
      }
      case 9: { // MMIO load
        const MmioReg &m =
            mmioLoadRegs[rng.uniformInt(0, std::size(mmioLoadRegs) - 1)];
        emit("la " + r(mmioPtr) + ", MMIO");
        emit("ldw " + r(dataReg(rng)) + ", " +
             memOp(mmioPtr, static_cast<std::int32_t>(
                                m.addr - mcu::mmio::base)));
        break;
      }
      case 10: { // timed low-power sleep
        unsigned rv = dataReg(rng);
        emit("la " + r(mmioPtr) + ", MMIO");
        emit("li " + r(rv) + ", " +
             std::to_string(rng.uniformInt(4, 64)));
        emit("stw " + r(rv) + ", " +
             memOp(mmioPtr, static_cast<std::int32_t>(
                                mcu::mmio::sleep - mcu::mmio::base)));
        break;
      }
      case 11: { // balanced push/pop pair (swaps two data regs)
        unsigned ra = dataReg(rng);
        unsigned rb = dataReg(rng);
        emit("push " + r(ra));
        emit("push " + r(rb));
        emit("pop " + r(ra));
        emit("pop " + r(rb));
        break;
      }
      case 12: // leaf call (subroutine appended at render time)
        emit("call fuzz_fn");
        break;
    }
    return snippet(std::move(lines));
}

Element
makeChkpt()
{
    Element e;
    e.kind = Element::Kind::Chkpt;
    return e;
}

Element
makeLoop(Rng &rng, bool checkpointing)
{
    Element e;
    e.kind = Element::Kind::Loop;
    e.iterations = static_cast<unsigned>(rng.uniformInt(1, 12));
    unsigned n = static_cast<unsigned>(rng.uniformInt(1, 4));
    for (unsigned i = 0; i < n; ++i) {
        if (checkpointing && rng.chance(0.12))
            e.body.push_back(makeChkpt());
        else
            e.body.push_back(makeSnippet(rng));
    }
    return e;
}

Element
makeSkip(Rng &rng)
{
    Element e;
    e.kind = Element::Kind::Skip;
    static const char *branches[] = {"beq",  "bne", "blt",
                                     "bge",  "bltu", "bgeu"};
    e.branchOp = branches[rng.uniformInt(0, 5)];
    e.cmpReg = dataReg(rng);
    e.cmpImm = static_cast<std::int32_t>(rng.uniformInt(-50, 50));
    unsigned n = static_cast<unsigned>(rng.uniformInt(1, 3));
    for (unsigned i = 0; i < n; ++i)
        e.body.push_back(makeSnippet(rng));
    return e;
}

Element
makeElement(Rng &rng, bool checkpointing)
{
    double roll = rng.uniform();
    if (roll < 0.60)
        return makeSnippet(rng);
    if (roll < 0.75)
        return makeLoop(rng, checkpointing);
    if (roll < 0.85)
        return makeSkip(rng);
    if (checkpointing)
        return makeChkpt();
    return makeSnippet(rng);
}

std::vector<BrownOut>
makeSchedule(Rng &rng, sim::Tick horizon, unsigned minN, unsigned maxN)
{
    std::vector<BrownOut> out;
    unsigned n = static_cast<unsigned>(
        rng.uniformInt(static_cast<std::int64_t>(minN),
                       static_cast<std::int64_t>(maxN)));
    sim::Tick lo = horizon / 8;
    sim::Tick hi = (horizon * 7) / 8;
    for (unsigned i = 0; i < n; ++i) {
        BrownOut b;
        b.at = rng.uniformInt(lo, hi);
        b.volts = rng.uniform(0.8, 1.7);
        out.push_back(b);
    }
    std::sort(out.begin(), out.end(),
              [](const BrownOut &a, const BrownOut &b) {
                  return a.at < b.at;
              });
    // Enforce a recharge gap so forced losses stay distinct events.
    constexpr sim::Tick gap = 2 * sim::oneMs;
    for (std::size_t i = 1; i < out.size(); ++i)
        if (out[i].at < out[i - 1].at + gap)
            out[i].at = out[i - 1].at + gap;
    while (!out.empty() && out.back().at >= horizon)
        out.pop_back();
    return out;
}

void
renderElement(const Element &e, bool checkpointing, unsigned &labelId,
              std::ostringstream &s)
{
    auto line = [&](const std::string &l) { s << "    " << l << "\n"; };
    switch (e.kind) {
      case Element::Kind::Snippet:
        for (const auto &l : e.lines)
            line(l);
        break;
      case Element::Kind::Chkpt:
        if (checkpointing)
            line("chkpt");
        break;
      case Element::Kind::Loop: {
        unsigned id = labelId++;
        std::string lab = "loop_" + std::to_string(id);
        line("li " + r(loopReg) + ", " + std::to_string(e.iterations));
        s << lab << ":\n";
        for (const auto &b : e.body)
            renderElement(b, checkpointing, labelId, s);
        line("addi " + r(loopReg) + ", " + r(loopReg) + ", -1");
        line("cmpi " + r(loopReg) + ", 0");
        line("bne " + lab);
        break;
      }
      case Element::Kind::Skip: {
        unsigned id = labelId++;
        std::string lab = "skip_" + std::to_string(id);
        line("cmpi " + r(e.cmpReg) + ", " + std::to_string(e.cmpImm));
        line(e.branchOp + " " + lab);
        for (const auto &b : e.body)
            renderElement(b, checkpointing, labelId, s);
        s << lab << ":\n";
        break;
      }
    }
}

std::string
render(const CaseSpec &spec, bool warMutant)
{
    std::ostringstream s;
    s << "; generated fuzz case\n"
      << ".entry main\n"
      << ".equ FSCRATCH, " << gen_layout::framScratchBase << "\n"
      << ".equ SSCRATCH, " << gen_layout::sramScratchBase << "\n"
      << ".equ MMIO, " << mcu::mmio::base << "\n";
    if (warMutant)
        s << ".equ WAR_GUIDE, " << gen_layout::warGuideAddr << "\n"
          << ".equ WAR_TARGET, " << gen_layout::warTargetAddr << "\n"
          << ".equ WAR_SENT, " << gen_layout::warSentinelAddr << "\n";
    s << "main:\n";
    if (warMutant) {
        // Seeded write-after-read hazard: r12 is loaded from FRAM
        // and then used as a store base with no checkpoint before
        // the next power loss — the auditor must flag this.
        s << "    la r6, WAR_GUIDE\n"
          << "    la r1, WAR_TARGET\n"
          << "    stw r1, [r6]\n"
          << "    ldw r12, [r6]\n"
          << "    li r1, 123\n"
          << "    stw r1, [r12]\n"
          << "    la r7, WAR_SENT\n"
          << "    li r2, 1\n"
          << "    stw r2, [r7]\n"
          << "war_done:\n";
    }
    unsigned labelId = 0;
    bool chk = spec.checkpointing && !warMutant;
    for (const auto &e : spec.elements)
        renderElement(e, chk, labelId, s);
    s << "    halt\n";
    std::string text = s.str();
    if (text.find("call fuzz_fn") != std::string::npos)
        s << "fuzz_fn:\n    addi r13, r13, 7\n    ret\n";
    return s.str();
}

} // namespace

CaseSpec
generateCase(std::uint64_t seed, const GeneratorOptions &options)
{
    Rng rng(seed ^ 0x66757A7AULL); // "fuzz"
    CaseSpec spec;
    spec.worldSeed =
        static_cast<std::uint64_t>(rng.uniformInt(1, 1 << 30));
    spec.checkpointing = rng.chance(0.7);
    spec.horizon = options.horizon;

    // A removable init element seeding the data registers.
    std::vector<std::string> init;
    for (unsigned reg : dataRegs)
        init.push_back("li " + r(reg) + ", " +
                       std::to_string(rng.uniformInt(-512, 511)));
    spec.elements.push_back(snippet(std::move(init)));

    unsigned n = static_cast<unsigned>(rng.uniformInt(
        options.minElements, options.maxElements));
    for (unsigned i = 0; i < n; ++i)
        spec.elements.push_back(makeElement(rng, spec.checkpointing));

    spec.schedule = makeSchedule(rng, spec.horizon, options.minBrownOuts,
                                 options.maxBrownOuts);
    return spec;
}

CaseSpec
mutateCase(const CaseSpec &base, std::uint64_t seed,
           const GeneratorOptions &options)
{
    Rng rng(seed ^ 0x6D757461ULL); // "muta"
    CaseSpec spec = base;
    unsigned edits = static_cast<unsigned>(rng.uniformInt(1, 3));
    for (unsigned i = 0; i < edits; ++i) {
        switch (rng.uniformInt(0, 6)) {
          case 0: // append a new element
            spec.elements.push_back(
                makeElement(rng, spec.checkpointing));
            break;
          case 1: // drop a random element
            if (spec.elements.size() > 1)
                spec.elements.erase(
                    spec.elements.begin() +
                    rng.uniformInt(
                        0, static_cast<std::int64_t>(
                               spec.elements.size() - 1)));
            break;
          case 2: // replace a random element
            if (!spec.elements.empty())
                spec.elements[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(
                           spec.elements.size() - 1)))] =
                    makeElement(rng, spec.checkpointing);
            break;
          case 3: { // retune a loop
            for (auto &e : spec.elements)
                if (e.kind == Element::Kind::Loop && rng.chance(0.5)) {
                    e.iterations = static_cast<unsigned>(
                        rng.uniformInt(1, 16));
                    break;
                }
            break;
          }
          case 4: // regenerate the brown-out schedule
            spec.schedule =
                makeSchedule(rng, spec.horizon, options.minBrownOuts,
                             options.maxBrownOuts);
            break;
          case 5: // new world seed (different harvest noise)
            spec.worldSeed = static_cast<std::uint64_t>(
                rng.uniformInt(1, 1 << 30));
            break;
          case 6: // flip checkpointing
            if (rng.chance(0.3))
                spec.checkpointing = !spec.checkpointing;
            break;
        }
    }
    return spec;
}

std::string
renderProgram(const CaseSpec &spec)
{
    return render(spec, false);
}

std::string
renderWarMutant(const CaseSpec &spec)
{
    return render(spec, true);
}

std::size_t
instructionCountOf(const std::string &listing)
{
    std::istringstream in(listing);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
        std::size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        std::string t = line.substr(b);
        if (t[0] == ';' || t[0] == '#' || t[0] == '.')
            continue;
        // Strip a leading label.
        std::size_t colon = t.find(':');
        if (colon != std::string::npos) {
            t = t.substr(colon + 1);
            b = t.find_first_not_of(" \t");
            if (b == std::string::npos)
                continue;
            t = t.substr(b);
            if (t[0] == ';' || t[0] == '#' || t[0] == '.')
                continue;
        }
        ++n;
    }
    return n;
}

std::size_t
instructionCount(const CaseSpec &spec)
{
    return instructionCountOf(renderProgram(spec));
}

} // namespace edb::fuzz
