#include "fuzz/corpus.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace edb::fuzz {

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Count newline-terminated lines (the framing for raw listings). */
std::size_t
lineCount(const std::string &text)
{
    std::size_t n = 0;
    for (char c : text)
        if (c == '\n')
            ++n;
    if (!text.empty() && text.back() != '\n')
        ++n;
    return n;
}

bool
readBlock(std::istream &in, std::size_t lines, std::string &out)
{
    out.clear();
    std::string line;
    for (std::size_t i = 0; i < lines; ++i) {
        if (!std::getline(in, line))
            return false;
        out += line;
        out += '\n';
    }
    return true;
}

} // namespace

std::string
artifactToText(const Artifact &artifact)
{
    const OracleCase &c = artifact.oracleCase;
    std::ostringstream s;
    s << "; fuzz_diff regression artifact";
    if (!artifact.note.empty())
        s << " -- " << artifact.note;
    s << "\n";
    s << "oracle " << oracleName(artifact.oracle) << "\n";
    s << "seed " << c.seed << "\n";
    s << "checkpointing " << (c.checkpointing ? 1 : 0) << "\n";
    s << "horizon " << c.horizon << "\n";
    s << "capacitance " << fmtDouble(c.capacitanceF) << "\n";
    s << "initial-volts " << fmtDouble(c.initialVolts) << "\n";
    for (const BrownOut &b : c.schedule)
        s << "brownout " << b.at << " " << fmtDouble(b.volts) << "\n";
    s << "program " << lineCount(c.program) << "\n" << c.program;
    if (!c.program.empty() && c.program.back() != '\n')
        s << "\n";
    if (!c.mutant.empty()) {
        s << "mutant " << lineCount(c.mutant) << "\n" << c.mutant;
        if (c.mutant.back() != '\n')
            s << "\n";
    }
    s << "end\n";
    return s.str();
}

std::optional<Artifact>
artifactFromText(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &msg) -> std::optional<Artifact> {
        if (error != nullptr)
            *error = msg;
        return std::nullopt;
    };

    Artifact a;
    std::istringstream in(text);
    std::string line;
    bool sawOracle = false;
    bool sawEnd = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == ';' || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "oracle") {
            std::string name;
            ls >> name;
            auto id = oracleFromName(name);
            if (!id)
                return fail("unknown oracle '" + name + "'");
            a.oracle = *id;
            sawOracle = true;
        } else if (key == "seed") {
            ls >> a.oracleCase.seed;
        } else if (key == "checkpointing") {
            int v = 0;
            ls >> v;
            a.oracleCase.checkpointing = v != 0;
        } else if (key == "horizon") {
            ls >> a.oracleCase.horizon;
        } else if (key == "capacitance") {
            ls >> a.oracleCase.capacitanceF;
        } else if (key == "initial-volts") {
            ls >> a.oracleCase.initialVolts;
        } else if (key == "brownout") {
            BrownOut b;
            ls >> b.at >> b.volts;
            if (ls.fail())
                return fail("malformed brownout line");
            a.oracleCase.schedule.push_back(b);
        } else if (key == "program" || key == "mutant") {
            std::size_t n = 0;
            ls >> n;
            if (ls.fail())
                return fail("missing line count after '" + key + "'");
            std::string block;
            if (!readBlock(in, n, block))
                return fail("truncated '" + key + "' block");
            if (key == "program")
                a.oracleCase.program = block;
            else
                a.oracleCase.mutant = block;
        } else if (key == "end") {
            sawEnd = true;
            break;
        } else {
            return fail("unknown key '" + key + "'");
        }
        if (ls.fail())
            return fail("malformed value for '" + key + "'");
    }
    if (!sawOracle)
        return fail("missing 'oracle' line");
    if (!sawEnd)
        return fail("missing 'end' line");
    if (a.oracleCase.program.empty())
        return fail("missing 'program' block");
    return a;
}

bool
saveArtifact(const Artifact &artifact, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << artifactToText(artifact);
    return static_cast<bool>(out);
}

std::optional<Artifact>
loadArtifact(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return artifactFromText(buf.str(), error);
}

} // namespace edb::fuzz
