#include "fuzz/shrink.hh"

#include <algorithm>

namespace edb::fuzz {

namespace {

struct Budget
{
    unsigned maxRuns;
    unsigned runs = 0;

    bool
    spent() const
    {
        return runs >= maxRuns;
    }

    bool
    check(const ShrinkPredicate &pred, const CaseSpec &candidate)
    {
        if (spent())
            return false;
        ++runs;
        return pred(candidate);
    }
};

/** Remove element chunks at shrinking granularity (ddmin flavour). */
void
reduceElements(CaseSpec &best, const ShrinkPredicate &pred, Budget &b)
{
    std::size_t chunk = std::max<std::size_t>(
        1, best.elements.size() / 2);
    while (chunk >= 1 && !b.spent()) {
        bool removedAny = false;
        for (std::size_t i = 0;
             i < best.elements.size() && !b.spent();) {
            CaseSpec candidate = best;
            std::size_t n =
                std::min(chunk, candidate.elements.size() - i);
            candidate.elements.erase(
                candidate.elements.begin() +
                    static_cast<std::ptrdiff_t>(i),
                candidate.elements.begin() +
                    static_cast<std::ptrdiff_t>(i + n));
            if (b.check(pred, candidate)) {
                best = std::move(candidate);
                removedAny = true;
                // Same index now holds the next chunk.
            } else {
                i += chunk;
            }
        }
        if (chunk == 1 && !removedAny)
            break;
        if (!removedAny)
            chunk /= 2;
    }
}

/** Flatten control flow: one iteration, smaller bodies. */
void
reduceControl(CaseSpec &best, const ShrinkPredicate &pred, Budget &b)
{
    for (std::size_t i = 0; i < best.elements.size() && !b.spent();
         ++i) {
        Element &e = best.elements[i];
        if (e.kind == Element::Kind::Loop && e.iterations > 1) {
            CaseSpec candidate = best;
            candidate.elements[i].iterations = 1;
            if (b.check(pred, candidate))
                best = std::move(candidate);
        }
        if ((e.kind == Element::Kind::Loop ||
             e.kind == Element::Kind::Skip) &&
            best.elements[i].body.size() > 1) {
            for (std::size_t j = 0;
                 j < best.elements[i].body.size() && !b.spent();) {
                CaseSpec candidate = best;
                candidate.elements[i].body.erase(
                    candidate.elements[i].body.begin() +
                    static_cast<std::ptrdiff_t>(j));
                if (b.check(pred, candidate))
                    best = std::move(candidate);
                else
                    ++j;
            }
        }
    }
}

/** Strip individual snippet lines (register classes are positional,
 *  so any sub-listing still assembles and stays WAR-free). */
void
reduceLines(CaseSpec &best, const ShrinkPredicate &pred, Budget &b)
{
    for (std::size_t i = 0; i < best.elements.size() && !b.spent();
         ++i) {
        if (best.elements[i].kind != Element::Kind::Snippet)
            continue;
        for (std::size_t j = 0;
             j < best.elements[i].lines.size() && !b.spent();) {
            CaseSpec candidate = best;
            candidate.elements[i].lines.erase(
                candidate.elements[i].lines.begin() +
                static_cast<std::ptrdiff_t>(j));
            if (candidate.elements[i].lines.empty())
                candidate.elements.erase(
                    candidate.elements.begin() +
                    static_cast<std::ptrdiff_t>(i));
            if (b.check(pred, candidate))
                best = std::move(candidate);
            else
                ++j;
            if (i >= best.elements.size() ||
                best.elements[i].kind != Element::Kind::Snippet)
                break;
        }
    }
}

/** Drop forced brown-outs that are not needed for the failure. */
void
reduceSchedule(CaseSpec &best, const ShrinkPredicate &pred, Budget &b)
{
    for (std::size_t i = 0;
         i < best.schedule.size() && !b.spent();) {
        CaseSpec candidate = best;
        candidate.schedule.erase(candidate.schedule.begin() +
                                 static_cast<std::ptrdiff_t>(i));
        if (b.check(pred, candidate))
            best = std::move(candidate);
        else
            ++i;
    }
}

} // namespace

ShrinkResult
shrinkCase(const CaseSpec &failing, const ShrinkPredicate &stillFails,
           unsigned maxRuns)
{
    ShrinkResult result;
    result.beforeInstrs = instructionCount(failing);
    result.spec = failing;
    Budget b{maxRuns};

    reduceElements(result.spec, stillFails, b);
    reduceControl(result.spec, stillFails, b);
    reduceLines(result.spec, stillFails, b);
    // Line removal can unlock further whole-element removal.
    reduceElements(result.spec, stillFails, b);
    reduceSchedule(result.spec, stillFails, b);

    result.runs = b.runs;
    result.afterInstrs = instructionCount(result.spec);
    return result;
}

} // namespace edb::fuzz
