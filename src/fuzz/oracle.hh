/**
 * @file
 * The six differential oracles the fuzzer checks every case against.
 *
 * An `OracleCase` is self-contained and textual — assembly listings
 * plus the world knobs and the forced-brown-out schedule — so a case
 * can be written to disk as a regression artifact and replayed
 * byte-for-byte later (see fuzz/corpus.hh). The oracles:
 *
 *  - FastRef: the full fast-path kernel vs the all-flags-off
 *    reference path must agree on every architectural statistic, the
 *    final register file, both memory images (CRC) and the exact
 *    capacitor voltage (DESIGN.md §7's bit-identity contract).
 *  - Snapshot: saving the world mid-run and resuming it in a fresh
 *    simulator must reach the same end state as the uninterrupted
 *    run (§8.1's resume-equivalence contract).
 *  - Replay: two from-scratch runs of the same case must be
 *    bit-identical — catches wall-clock, address-order or uninitialized
 *    state leaking into simulation results.
 *  - Audit: the NV auditor must stay silent on the (WAR-free by
 *    construction) clean program, and must flag the seeded-WAR
 *    mutant whenever a power loss actually exposed the hazard
 *    (soundness and completeness of §8.2's taint machine). When the
 *    power trace never lost power after the gadget ran, the
 *    completeness half is inconclusive, not a failure.
 *  - Superblock: the threaded-code superblock tier vs the reference
 *    interpreter (§10). Unlike FastRef — whose fast leg carries a
 *    tracer, which forces per-instruction stepping — the superblock
 *    leg runs un-instrumented so blocks actually dispatch; the
 *    reference leg carries the coverage tracer instead.
 *  - Etap: the static energy analyzer (src/analysis/, DESIGN.md §14)
 *    cross-checked against simulated ground truth. Soundness: the
 *    analyzer's worst-case boot-to-persist charge bound must never
 *    be exceeded by any observed power-on→first-persist drain.
 *    Starvation: a must-starve verdict with observed forward
 *    progress is a false positive; a completes verdict with a
 *    conclusive stall (no persist over many un-forced boots) is a
 *    false negative. Cases where neither half can be exercised
 *    (unbounded regions and no starvation claim) are inconclusive.
 *  - CrashAnywhere: the torn-write consistency oracle (§11). The
 *    case runs under the sealed commit discipline with interruptible
 *    commits, and a fault injector forces a brown-out at a
 *    seed-derived NV word inside a checkpoint commit burst
 *    (optionally corrupting the in-flight word). The auditor's seal
 *    check then asserts every restore replays a frame some completed
 *    commit actually sealed — the resumed world is the pre- or
 *    post-checkpoint state, never a hybrid. Cases whose schedule
 *    never lands a tear inside a commit are inconclusive, not
 *    failures.
 */

#ifndef EDB_FUZZ_ORACLE_HH
#define EDB_FUZZ_ORACLE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/coverage.hh"
#include "fuzz/generator.hh"
#include "sim/time.hh"

namespace edb::fuzz {

enum class OracleId : std::uint8_t
{
    FastRef = 0,
    Snapshot,
    Replay,
    Audit,
    Superblock,
    CrashAnywhere,
    Etap,
};

constexpr unsigned numOracles = 7;

/** Stable artifact name ("fastref", "snapshot", "replay", "audit",
 *  "superblock", "crashanywhere", "etap"). */
const char *oracleName(OracleId id);
std::optional<OracleId> oracleFromName(const std::string &name);

/** A self-contained, replayable case (see file header). */
struct OracleCase
{
    /** Clean program listing (assembled at origin 0x4000). */
    std::string program;
    /** Seeded-WAR mutant listing; empty when not generated. */
    std::string mutant;
    /** Simulator seed; also derives the harvester's Thevenin
     *  parameters (see oracle.cc). */
    std::uint64_t seed = 1;
    /** Hardware checkpoint unit enabled for the clean program. */
    bool checkpointing = true;
    sim::Tick horizon = 40 * sim::oneMs;
    /** Storage capacitor; small so brown-out/recharge cycles fit the
     *  short horizon. */
    double capacitanceF = 4.7e-6;
    /** Start charged so the first boot is immediate. */
    double initialVolts = 2.6;
    std::vector<BrownOut> schedule;
};

/** Lower a generated spec to its replayable textual form. */
OracleCase makeOracleCase(const CaseSpec &spec);

struct OracleOutcome
{
    bool failed = false;
    /** Audit completeness could not be exercised (no power loss after
     *  the gadget ran); counts as a pass. */
    bool inconclusive = false;
    std::string detail;
};

/**
 * Run one oracle on one case. When `coverage` is non-null the run is
 * instrumented (tracer + lifecycle polling) and observed behaviours
 * are added to it.
 */
OracleOutcome runOracle(OracleId id, const OracleCase &c,
                        Coverage *coverage = nullptr);

/**
 * Auditor-soundness building block (shared with the false-positive
 * property test): run the clean program with the auditor attached
 * and return the violation count — zero for every checkpoint-correct
 * program.
 */
std::uint64_t auditViolations(const OracleCase &c);

} // namespace edb::fuzz

#endif // EDB_FUZZ_ORACLE_HH
