/**
 * @file
 * Constrained EH32 program + power-schedule generator.
 *
 * The fuzzer does not throw arbitrary bytes at the interpreter: a
 * generated case is a structured `CaseSpec` — a list of atomic
 * program elements (straight-line snippets, bounded loops, forward
 * skips, checkpoint calls) plus a forced-brown-out schedule — that
 * renders to assembly accepted by the existing two-pass assembler
 * and, by construction, executes without faults and without
 * write-after-read hazards on non-volatile state:
 *
 *  - all memory traffic goes through pointer registers established
 *    with `la` (which clears auditor taint) into fixed FRAM / SRAM
 *    scratch windows, with offsets bounded inside the window and
 *    word accesses kept 4-aligned;
 *  - registers loaded from memory ("data class") are never used as a
 *    store base and never flow into pointer registers, so no store
 *    is ever guided by a stale non-volatile read — generated
 *    programs are checkpoint-correct and must audit clean;
 *  - branches exist only inside self-contained loop/skip elements
 *    whose labels are generated at render time, so any subset of
 *    elements still assembles — which is what makes shrinking a
 *    simple list-reduction problem.
 *
 * `renderWarMutant` re-renders the same spec with a seeded
 * write-after-read gadget at the entry point (a store through a
 * pointer *loaded from* FRAM, followed by a sentinel store and a
 * `war_done` label) and checkpoint elements stripped: the mutant is
 * the auditor-completeness half of the audit oracle.
 */

#ifndef EDB_FUZZ_GENERATOR_HH
#define EDB_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace edb::fuzz {

/** Scratch layout shared by every generated program (FRAM data,
 *  SRAM data, and the WAR gadget cells, all word aligned). */
namespace gen_layout {
constexpr std::uint32_t framScratchBase = 0x6000;
constexpr std::uint32_t sramScratchBase = 0x1000;
constexpr std::uint32_t scratchBytes = 0x100;
constexpr std::uint32_t warGuideAddr = 0x6800;
constexpr std::uint32_t warTargetAddr = 0x6804;
constexpr std::uint32_t warSentinelAddr = 0x6808;
} // namespace gen_layout

/** One forced brown-out: capacitor voltage forced to `volts` at
 *  tick `at` (below the brown-out comparator = instant power loss). */
struct BrownOut
{
    sim::Tick at = 0;
    double volts = 1.0;
};

/** One atomic program element. */
struct Element
{
    enum class Kind : std::uint8_t
    {
        Snippet, ///< Straight-line lines, self-contained.
        Loop,    ///< Bounded counted loop around `body`.
        Skip,    ///< Conditional forward branch over `body`.
        Chkpt,   ///< Hardware checkpoint request.
    };

    Kind kind = Kind::Snippet;
    /** Snippet: the assembly lines (no labels). */
    std::vector<std::string> lines;
    /** Loop: iteration count (>= 1). */
    unsigned iterations = 1;
    /** Loop / Skip: nested elements (Snippet / Chkpt only). */
    std::vector<Element> body;
    /** Skip: branch mnemonic (beq/bne/blt/bge/bltu/bgeu). */
    std::string branchOp = "beq";
    /** Skip: compared data register and immediate. */
    unsigned cmpReg = 1;
    std::int32_t cmpImm = 0;
};

/** A complete generated case: program, schedule, world knobs. */
struct CaseSpec
{
    /** Simulator seed (drives harvest noise). */
    std::uint64_t worldSeed = 1;
    /** Hardware checkpoint unit enabled (and chkpt elements allowed). */
    bool checkpointing = true;
    /** Run horizon. */
    sim::Tick horizon = 40 * sim::oneMs;
    /** Program body. */
    std::vector<Element> elements;
    /** Forced brown-out schedule. */
    std::vector<BrownOut> schedule;
};

/** Generation knobs. */
struct GeneratorOptions
{
    unsigned minElements = 8;
    unsigned maxElements = 26;
    unsigned minBrownOuts = 1;
    unsigned maxBrownOuts = 4;
    sim::Tick horizon = 40 * sim::oneMs;
};

/** Generate a fresh case from a seed (deterministic). */
CaseSpec generateCase(std::uint64_t seed,
                      const GeneratorOptions &options = {});

/** Mutate an existing case (deterministic in `seed`). */
CaseSpec mutateCase(const CaseSpec &base, std::uint64_t seed,
                    const GeneratorOptions &options = {});

/** Render the spec to assembly source (the clean program). */
std::string renderProgram(const CaseSpec &spec);

/**
 * Render the seeded-WAR mutant: the same program with the gadget
 * prologue injected at `main` and checkpoint elements stripped.
 * Defines the `war_done` label the audit oracle's tracer watches.
 */
std::string renderWarMutant(const CaseSpec &spec);

/** Number of instruction lines in the rendered clean program. */
std::size_t instructionCount(const CaseSpec &spec);

/** Number of instruction lines in an arbitrary listing. */
std::size_t instructionCountOf(const std::string &listing);

} // namespace edb::fuzz

#endif // EDB_FUZZ_GENERATOR_HH
