/**
 * @file
 * Coverage signal for the differential fuzzer.
 *
 * A `Coverage` is a set of small packed keys describing behaviours a
 * case actually exercised at runtime (not just emitted): which
 * opcodes retired, which opcode x address-space-class pairs the
 * memory traffic hit, which MMIO registers were touched, and which
 * power-state edges (boot, brown-out at a given code region,
 * checkpoint commit/restore, fault, halt) occurred. The fuzz driver
 * merges each case's coverage into a global map; cases that
 * contribute new keys are kept in the mutation pool, which is what
 * makes the fuzzer coverage-guided rather than purely random.
 */

#ifndef EDB_FUZZ_COVERAGE_HH
#define EDB_FUZZ_COVERAGE_HH

#include <cstdint>
#include <set>

#include "isa/isa.hh"
#include "mem/memory.hh"

namespace edb::fuzz {

/** Power-state / lifecycle edges observed during a run. */
enum class Edge : std::uint8_t
{
    Boot = 0,       ///< First turn-on.
    Reboot,         ///< Power lost and regained.
    Checkpoint,     ///< Checkpoint committed.
    Restore,        ///< Boot restored from a checkpoint.
    Fault,          ///< Core faulted.
    Halt,           ///< HALT retired.
};

/** Address-space class of a data access. */
enum class MemClass : std::uint8_t { Sram = 0, Fram, Mmio };

/**
 * Set of packed coverage keys. Keys are 32-bit: the top byte is the
 * key kind, the rest identifies the behaviour within the kind.
 */
class Coverage
{
  public:
    /** An instruction with this opcode retired. */
    void
    noteExec(isa::Opcode op)
    {
        add(pack(kindExec, static_cast<std::uint32_t>(op)));
    }

    /** A memory access of `op` landed in address class `cls`. */
    void
    noteMem(isa::Opcode op, MemClass cls)
    {
        add(pack(kindMem, (static_cast<std::uint32_t>(op) << 8) |
                              static_cast<std::uint32_t>(cls)));
    }

    /** An access touched the MMIO register at `reg` (word aligned). */
    void noteMmio(mem::Addr reg) { add(pack(kindMmio, reg & 0xFFFFu)); }

    /** A lifecycle edge occurred. */
    void
    noteEdge(Edge e)
    {
        add(pack(kindEdge, static_cast<std::uint32_t>(e)));
    }

    /**
     * Power was lost while the last retired instruction sat in the
     * 16-byte code bucket containing `lastPc` — the coverage signal
     * for "a reboot interrupted *this* part of the program".
     */
    void
    noteRebootAt(mem::Addr lastPc)
    {
        add(pack(kindRebootPc, (lastPc >> 4) & 0xFFFFu));
    }

    /** Number of distinct keys. */
    std::size_t distinct() const { return keys.size(); }

    /** Distinct keys of one kind (for the summary breakdown). */
    std::size_t
    distinctOfKind(std::uint8_t kind) const
    {
        std::size_t n = 0;
        for (std::uint32_t k : keys)
            if ((k >> 24) == kind)
                ++n;
        return n;
    }

    /** Merge `other` into this map. @return number of new keys. */
    std::size_t
    merge(const Coverage &other)
    {
        std::size_t fresh = 0;
        for (std::uint32_t k : other.keys)
            if (keys.insert(k).second)
                ++fresh;
        return fresh;
    }

    static constexpr std::uint8_t kindExec = 1;
    static constexpr std::uint8_t kindMem = 2;
    static constexpr std::uint8_t kindMmio = 3;
    static constexpr std::uint8_t kindEdge = 4;
    static constexpr std::uint8_t kindRebootPc = 5;

  private:
    static std::uint32_t
    pack(std::uint8_t kind, std::uint32_t payload)
    {
        return (static_cast<std::uint32_t>(kind) << 24) |
               (payload & 0x00FFFFFFu);
    }

    void add(std::uint32_t key) { keys.insert(key); }

    std::set<std::uint32_t> keys;
};

} // namespace edb::fuzz

#endif // EDB_FUZZ_COVERAGE_HH
