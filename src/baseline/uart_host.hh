/**
 * @file
 * Always-on UART logging host.
 *
 * The "stream the event log to a separate, always-on system (e.g.,
 * via UART)" instrumentation strategy of paper Section 2.2. Collects
 * bytes from the target's console UART into lines. Note that an
 * off-the-shelf USB-to-serial adapter is *not* electrically isolated;
 * the `adapterLeakAmps` load models the resulting energy
 * interference on top of the transmit cost.
 */

#ifndef EDB_BASELINE_UART_HOST_HH
#define EDB_BASELINE_UART_HOST_HH

#include <string>
#include <vector>

#include "target/wisp.hh"

namespace edb::baseline {

/** Line-assembling UART log receiver. */
class UartHost : public sim::Component
{
  public:
    UartHost(sim::Simulator &simulator, std::string component_name,
             target::Wisp &target_device,
             double adapter_leak_amps = 5e-6);

    /** Completed lines received so far. */
    const std::vector<std::string> &lines() const { return complete; }

    /** Total bytes received. */
    std::uint64_t byteCount() const { return bytes; }

    /** The partial line currently being assembled. */
    const std::string &partial() const { return current; }

  private:
    void onByte(std::uint8_t byte, sim::Tick when);

    std::vector<std::string> complete;
    std::string current;
    std::uint64_t bytes = 0;
};

} // namespace edb::baseline

#endif // EDB_BASELINE_UART_HOST_HH
