#include "baseline/oscilloscope.hh"

#include <algorithm>
#include <cmath>

#include "trace/vcd.hh"

namespace edb::baseline {

Oscilloscope::Oscilloscope(sim::Simulator &simulator,
                           std::string component_name,
                           sim::Tick sample_period)
    : sim::Component(simulator, std::move(component_name)),
      period(sample_period)
{}

std::size_t
Oscilloscope::addChannel(std::string channel_name, Probe probe)
{
    names.push_back(std::move(channel_name));
    probes.push_back(std::move(probe));
    return probes.size() - 1;
}

void
Oscilloscope::start()
{
    if (running)
        return;
    running = true;
    sample();
}

void
Oscilloscope::stop()
{
    running = false;
    if (sampleEvent != sim::invalidEventId) {
        sim().cancel(sampleEvent);
        sampleEvent = sim::invalidEventId;
    }
}

void
Oscilloscope::sample()
{
    sampleEvent = sim::invalidEventId;
    if (!running)
        return;
    ScopeSample s;
    s.when = now();
    s.values.reserve(probes.size());
    for (const auto &probe : probes)
        s.values.push_back(probe());
    waveform.push_back(std::move(s));
    sampleEvent = sim().scheduleIn(period, [this] { sample(); });
}

double
Oscilloscope::valueAt(std::size_t ch, sim::Tick when) const
{
    if (waveform.empty())
        return 0.0;
    auto it = std::lower_bound(
        waveform.begin(), waveform.end(), when,
        [](const ScopeSample &s, sim::Tick t) { return s.when < t; });
    if (it == waveform.end())
        return waveform.back().values.at(ch);
    if (it != waveform.begin()) {
        auto prev = it - 1;
        if (when - prev->when < it->when - when)
            it = prev;
    }
    return it->values.at(ch);
}

void
Oscilloscope::writeCsv(std::ostream &os) const
{
    os << "time_ms";
    for (const auto &n : names)
        os << ',' << n;
    os << '\n';
    for (const auto &s : waveform) {
        os << sim::millisFromTicks(s.when);
        for (double v : s.values)
            os << ',' << v;
        os << '\n';
    }
}

void
Oscilloscope::writeVcd(std::ostream &os) const
{
    trace::VcdWriter vcd(os, 1000); // 1 us per VCD unit
    std::vector<bool> digital(names.size(), true);
    for (const auto &s : waveform) {
        for (std::size_t ch = 0; ch < s.values.size(); ++ch) {
            double v = s.values[ch];
            if (v != 0.0 && v != 1.0)
                digital[ch] = false;
        }
    }
    std::vector<std::size_t> handles;
    handles.reserve(names.size());
    for (std::size_t ch = 0; ch < names.size(); ++ch) {
        handles.push_back(digital[ch] ? vcd.addWire(names[ch])
                                      : vcd.addReal(names[ch]));
    }
    std::vector<double> last(names.size(),
                             std::numeric_limits<double>::quiet_NaN());
    for (const auto &s : waveform) {
        for (std::size_t ch = 0; ch < s.values.size(); ++ch) {
            double v = s.values[ch];
            if (v == last[ch])
                continue; // only dump changes
            last[ch] = v;
            if (digital[ch])
                vcd.changeWire(handles[ch], s.when, v > 0.5);
            else
                vcd.changeReal(handles[ch], s.when, v);
        }
    }
    if (!waveform.empty())
        vcd.finish(waveform.back().when);
}

std::size_t
Oscilloscope::risingEdges(std::size_t ch, sim::Tick from,
                          sim::Tick to) const
{
    std::size_t edges = 0;
    bool prev_high = false;
    bool first = true;
    for (const auto &s : waveform) {
        if (s.when < from || s.when > to)
            continue;
        bool high = s.values.at(ch) > 0.5;
        if (!first && high && !prev_high)
            ++edges;
        prev_high = high;
        first = false;
    }
    return edges;
}

} // namespace edb::baseline
