/**
 * @file
 * Source meter (Keithley 2450 stand-in).
 *
 * Applies a voltage to the driving endpoint of an EDB<->target
 * connection and measures the resulting DC current — the measurement
 * methodology of paper Table 2 ("we used a source meter to apply a
 * voltage to the driving endpoint of each connection and measure the
 * resulting current").
 */

#ifndef EDB_BASELINE_SOURCE_METER_HH
#define EDB_BASELINE_SOURCE_METER_HH

#include "edb/connection.hh"
#include "sim/rng.hh"
#include "trace/stats.hh"

namespace edb::baseline {

/** Source meter with a realistic measurement noise floor. */
class SourceMeter
{
  public:
    /**
     * @param rng Measurement noise source.
     * @param noise_floor_amps Absolute noise floor (1 sigma).
     * @param relative_noise Relative reading noise (1 sigma).
     */
    explicit SourceMeter(sim::Rng &rng,
                         double noise_floor_amps = 0.01e-9,
                         double relative_noise = 0.18);

    /**
     * Apply `volts` to the connection in logic state `state` and
     * measure the current out of the target endpoint.
     */
    double measure(const edbdbg::Connection &connection,
                   edbdbg::LineState state, double volts);

    /**
     * Repeat a measurement `trials` times, as the paper did when
     * producing the min/avg/max columns.
     */
    trace::SampleSet measureMany(const edbdbg::Connection &connection,
                                 edbdbg::LineState state, double volts,
                                 unsigned trials);

  private:
    sim::Rng &rng;
    double floorAmps;
    double relNoise;
};

} // namespace edb::baseline

#endif // EDB_BASELINE_SOURCE_METER_HH
