/**
 * @file
 * Mixed-signal oscilloscope model.
 *
 * Stands in for the Tektronix MDO4104 of the paper's setup: samples
 * analog channels (function probes) and digital channels at a fixed
 * rate into a waveform buffer. It is the "mostly energy-interference
 * -free tool" of Section 2.2 — it sees the power system but "provides
 * no insight into the internal state of the software". Used by the
 * benches to regenerate the Fig 7 / Fig 9 traces and to provide the
 * independent measurement column of Table 3.
 */

#ifndef EDB_BASELINE_OSCILLOSCOPE_HH
#define EDB_BASELINE_OSCILLOSCOPE_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace edb::baseline {

/** One captured sample across all channels. */
struct ScopeSample
{
    sim::Tick when = 0;
    std::vector<double> values;
};

/** Multi-channel sampling oscilloscope. */
class Oscilloscope : public sim::Component
{
  public:
    /** Analog probe: returns volts at sample time. */
    using Probe = std::function<double()>;

    Oscilloscope(sim::Simulator &simulator, std::string component_name,
                 sim::Tick sample_period = 100 * sim::oneUs);

    /** Add a channel; returns its index. */
    std::size_t addChannel(std::string channel_name, Probe probe);

    /** Start capturing. */
    void start();

    /** Stop capturing (waveform retained). */
    void stop();

    /** Clear the waveform buffer. */
    void clear() { waveform.clear(); }

    /** Captured samples. */
    const std::vector<ScopeSample> &capture() const { return waveform; }

    /** Channel names. */
    const std::vector<std::string> &channels() const { return names; }

    /** Value of channel `ch` at the sample closest to `when`. */
    double valueAt(std::size_t ch, sim::Tick when) const;

    /** Write the waveform as CSV (time_ms, ch0, ch1, ...). */
    void writeCsv(std::ostream &os) const;

    /**
     * Write the waveform as a VCD dump for GTKWave-style viewers.
     * Channels whose samples are all 0/1 are emitted as wires,
     * everything else as real signals.
     */
    void writeVcd(std::ostream &os) const;

    /**
     * Count rising edges of a digital-ish channel within a window
     * (edge = crossing 0.5 upward). Used to detect "the main loop
     * stopped toggling".
     */
    std::size_t risingEdges(std::size_t ch, sim::Tick from,
                            sim::Tick to) const;

  private:
    void sample();

    sim::Tick period;
    bool running = false;
    std::vector<std::string> names;
    std::vector<Probe> probes;
    std::vector<ScopeSample> waveform;
    sim::EventId sampleEvent = sim::invalidEventId;
};

} // namespace edb::baseline

#endif // EDB_BASELINE_OSCILLOSCOPE_HH
