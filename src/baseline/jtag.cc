#include "baseline/jtag.hh"

namespace edb::baseline {

JtagDebugger::JtagDebugger(sim::Simulator &simulator,
                           std::string component_name,
                           target::Wisp &target_device,
                           bool supplies_power, double rail_volts,
                           double rail_ohms)
    : sim::Component(simulator, std::move(component_name)),
      wisp(target_device),
      rail(rail_volts, rail_ohms),
      suppliesPower(supplies_power)
{
    // Worst draw: the rail sinking from a capacitor at the clamp
    // voltage with the set-point at ground.
    wisp.power().addSource(
        name() + ".rail",
        [this](double v, double) { return rail.currentInto(v); },
        wisp.power().config().maxVolts / rail_ohms);
}

void
JtagDebugger::attach()
{
    isAttached = true;
    if (suppliesPower)
        rail.setEnabled(true);
}

void
JtagDebugger::detach()
{
    isAttached = false;
    rail.setEnabled(false);
}

bool
JtagDebugger::targetResponsive() const
{
    return isAttached && wisp.power().poweredOn();
}

std::optional<std::uint32_t>
JtagDebugger::read32(std::uint32_t addr)
{
    if (!targetResponsive())
        return std::nullopt;
    return wisp.mcu().debugRead32(addr);
}

bool
JtagDebugger::write32(std::uint32_t addr, std::uint32_t value)
{
    if (!targetResponsive())
        return false;
    wisp.mcu().debugWrite32(addr, value);
    return true;
}

} // namespace edb::baseline
