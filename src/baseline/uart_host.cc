#include "baseline/uart_host.hh"

namespace edb::baseline {

UartHost::UartHost(sim::Simulator &simulator,
                   std::string component_name,
                   target::Wisp &target_device,
                   double adapter_leak_amps)
    : sim::Component(simulator, std::move(component_name))
{
    // Non-isolated adapter leakage: permanently loads the target.
    target_device.power().addLoad(name() + ".adapter_leak",
                                  adapter_leak_amps, true);
    target_device.uart().addTxListener(
        [this](std::uint8_t byte, sim::Tick when) {
            onByte(byte, when);
        });
}

void
UartHost::onByte(std::uint8_t byte, sim::Tick)
{
    ++bytes;
    if (byte == '\n') {
        complete.push_back(current);
        current.clear();
        return;
    }
    current.push_back(static_cast<char>(byte));
}

} // namespace edb::baseline
