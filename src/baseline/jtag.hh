/**
 * @file
 * Conventional JTAG debugger baseline.
 *
 * "Dedicated debugging equipment, like a JTAG debugger, offers
 * visibility into the device's state but is not useful because it
 * provides continuous power and masks intermittence... the JTAG
 * protocol fails if the DUT powers off." (paper Section 2.2)
 *
 * The model supplies the target from the debug pod's rail while
 * attached (masking intermittence) and refuses all state access the
 * moment the target is unpowered.
 */

#ifndef EDB_BASELINE_JTAG_HH
#define EDB_BASELINE_JTAG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "energy/supply.hh"
#include "target/wisp.hh"

namespace edb::baseline {

/** JTAG debug pod attached to the target. */
class JtagDebugger : public sim::Component
{
  public:
    /**
     * @param supplies_power Conventional pods power the DUT; pass
     *        false to model a JTAG isolator (which decouples the
     *        rails but still cannot follow a power-cycling DUT).
     */
    JtagDebugger(sim::Simulator &simulator, std::string component_name,
                 target::Wisp &target_device,
                 bool supplies_power = true,
                 double rail_volts = 3.0, double rail_ohms = 20.0);

    /** Attach / detach the pod. */
    void attach();
    void detach();
    bool attached() const { return isAttached; }

    /**
     * Read target memory over JTAG. Fails (nullopt) when the target
     * is unpowered — the protocol cannot survive a power cycle.
     */
    std::optional<std::uint32_t> read32(std::uint32_t addr);

    /** Write target memory over JTAG (false when unpowered). */
    bool write32(std::uint32_t addr, std::uint32_t value);

    /** Halt the core? Conventional run-control works only while
     *  powered; returns false otherwise. */
    bool targetResponsive() const;

  private:
    target::Wisp &wisp;
    energy::VoltageSupply rail;
    bool suppliesPower;
    bool isAttached = false;
};

} // namespace edb::baseline

#endif // EDB_BASELINE_JTAG_HH
