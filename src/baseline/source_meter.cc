#include "baseline/source_meter.hh"

namespace edb::baseline {

SourceMeter::SourceMeter(sim::Rng &rng_in, double noise_floor_amps,
                         double relative_noise)
    : rng(rng_in), floorAmps(noise_floor_amps), relNoise(relative_noise)
{}

double
SourceMeter::measure(const edbdbg::Connection &connection,
                     edbdbg::LineState state, double volts)
{
    double truth = connection.current(state, volts);
    double noise =
        rng.gaussian(floorAmps) + truth * rng.gaussian(relNoise);
    return truth + noise;
}

trace::SampleSet
SourceMeter::measureMany(const edbdbg::Connection &connection,
                         edbdbg::LineState state, double volts,
                         unsigned trials)
{
    trace::SampleSet samples;
    for (unsigned i = 0; i < trials; ++i)
        samples.add(measure(connection, state, volts));
    return samples;
}

} // namespace edb::baseline
