/**
 * @file
 * Summary statistics, histograms and empirical CDFs.
 *
 * Used by the benchmark harnesses to report the paper's tables
 * (mean / standard deviation in Table 3, CDF series in Figure 11).
 */

#ifndef EDB_TRACE_STATS_HH
#define EDB_TRACE_STATS_HH

#include <cstddef>
#include <vector>

namespace edb::trace {

/**
 * Online accumulator for mean / variance / extrema (Welford).
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample standard deviation (0 when n < 2). */
    double stddev() const;

    /** Population variance numerator / (n-1). */
    double variance() const;

    /** Smallest sample seen. */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample seen. */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all samples. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Batch sample set with quantile / CDF queries.
 *
 * Samples are stored and sorted lazily on first query.
 */
class SampleSet
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples. */
    std::size_t count() const { return samples.size(); }

    /** True when no samples were added. */
    bool empty() const { return samples.empty(); }

    /** Quantile q in [0,1] by linear interpolation. */
    double quantile(double q) const;

    /** Median (quantile 0.5). */
    double median() const { return quantile(0.5); }

    /** Empirical CDF evaluated at x: P(sample <= x). */
    double cdfAt(double x) const;

    /**
     * Evaluate the CDF at `points` evenly spaced values spanning
     * [min, max]; returns (x, P) pairs, suitable for plotting
     * Figure 11-style curves.
     */
    std::vector<std::pair<double, double>> cdfSeries(std::size_t points)
        const;

    /** Summary statistics over the same samples. */
    const Summary &summary() const { return stats; }

    /** Sorted copy of the samples. */
    const std::vector<double> &sorted() const;

  private:
    mutable std::vector<double> samples;
    mutable bool isSorted = true;
    Summary stats;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples clamp into
 * the first / last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x) { add(x, 1); }

    /** Add `weight` occurrences of the same value in O(1) — the
     *  natural ingest for pre-binned counters such as the MCU's
     *  superblock block-length counts. */
    void add(double x, std::size_t weight);

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Count in bin `i`. */
    std::size_t binCount(std::size_t i) const { return counts.at(i); }

    /** Center value of bin `i`. */
    double binCenter(std::size_t i) const;

    /** Total samples added. */
    std::size_t total() const { return n; }

    /** Exact mean of the added values (not bin centers; 0 when
     *  empty). */
    double mean() const;

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t n = 0;
    /** Exact running sum of samples (x * weight). */
    double sumX = 0.0;
};

} // namespace edb::trace

#endif // EDB_TRACE_STATS_HH
