/**
 * @file
 * Value-change-dump (VCD) export of captured waveforms.
 *
 * Lets the oscilloscope captures and EDB trace streams be inspected
 * in standard waveform viewers (GTKWave et al.) — the ergonomic
 * equivalent of the mixed-signal scope screenshots in the paper's
 * Figures 7, 9 and 12.
 *
 * Analog channels are emitted as IEEE-1364 `real` variables, digital
 * channels as 1-bit wires.
 */

#ifndef EDB_TRACE_VCD_HH
#define EDB_TRACE_VCD_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace edb::trace {

/** Streaming VCD writer. */
class VcdWriter
{
  public:
    /**
     * @param os Output stream (kept by reference; must outlive the
     *        writer).
     * @param timescale_ns Nanoseconds per VCD time unit.
     */
    explicit VcdWriter(std::ostream &os, unsigned timescale_ns = 1000);

    /// @name Declaration phase (before the first change)
    /// @{
    /** Declare a real-valued (analog) signal; returns its handle. */
    std::size_t addReal(const std::string &signal_name);
    /** Declare a 1-bit (digital) signal; returns its handle. */
    std::size_t addWire(const std::string &signal_name);
    /// @}

    /// @name Dump phase
    /// @{
    /** Record a real value at `when` (times must be monotonic). */
    void changeReal(std::size_t handle, sim::Tick when, double value);
    /** Record a bit value at `when`. */
    void changeWire(std::size_t handle, sim::Tick when, bool value);
    /** Flush the final timestamp marker. */
    void finish(sim::Tick end_time);
    /// @}

  private:
    struct Signal
    {
        std::string name;
        std::string id;
        bool isReal;
    };

    void writeHeaderIfNeeded();
    void advanceTo(sim::Tick when);
    std::string idFor(std::size_t index) const;

    std::ostream &os;
    unsigned timescaleNs;
    std::vector<Signal> signals;
    bool headerWritten = false;
    sim::Tick lastTime = -1;
};

} // namespace edb::trace

#endif // EDB_TRACE_VCD_HH
