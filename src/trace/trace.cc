#include "trace/trace.hh"

#include <algorithm>

namespace edb::trace {

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::EnergySample: return "energy";
      case Kind::Watchpoint: return "watchpoint";
      case Kind::IoByte: return "io";
      case Kind::RfidMessage: return "rfid";
      case Kind::Printf: return "printf";
      case Kind::AssertFail: return "assert";
      case Kind::Breakpoint: return "breakpoint";
      case Kind::EnergyGuard: return "energy_guard";
      case Kind::PowerEvent: return "power";
      case Kind::Generic: return "note";
    }
    return "unknown";
}

std::vector<Record>
TraceBuffer::ofKind(Kind kind) const
{
    std::vector<Record> out;
    std::copy_if(records.begin(), records.end(), std::back_inserter(out),
                 [kind](const Record &r) { return r.kind == kind; });
    return out;
}

std::size_t
TraceBuffer::countOf(Kind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(records.begin(), records.end(),
                      [kind](const Record &r) { return r.kind == kind; }));
}

void
TraceBuffer::writeCsv(std::ostream &os) const
{
    os << "time_ms,kind,id,a,b,text\n";
    for (const auto &r : records) {
        std::string text = r.text;
        std::replace(text.begin(), text.end(), ',', ';');
        std::replace(text.begin(), text.end(), '\n', ' ');
        os << sim::millisFromTicks(r.when) << ',' << kindName(r.kind)
           << ',' << r.id << ',' << r.a << ',' << r.b << ',' << text
           << '\n';
    }
}

} // namespace edb::trace
