#include "trace/vcd.hh"

#include "sim/logging.hh"

namespace edb::trace {

VcdWriter::VcdWriter(std::ostream &os_in, unsigned timescale_ns)
    : os(os_in), timescaleNs(timescale_ns)
{
    if (timescale_ns == 0)
        sim::fatal("VcdWriter: timescale must be > 0");
}

std::string
VcdWriter::idFor(std::size_t index) const
{
    // Printable short identifiers: !, ", #, ... then two chars.
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return id;
}

std::size_t
VcdWriter::addReal(const std::string &signal_name)
{
    if (headerWritten)
        sim::fatal("VcdWriter: declarations must precede changes");
    signals.push_back({signal_name, idFor(signals.size()), true});
    return signals.size() - 1;
}

std::size_t
VcdWriter::addWire(const std::string &signal_name)
{
    if (headerWritten)
        sim::fatal("VcdWriter: declarations must precede changes");
    signals.push_back({signal_name, idFor(signals.size()), false});
    return signals.size() - 1;
}

void
VcdWriter::writeHeaderIfNeeded()
{
    if (headerWritten)
        return;
    headerWritten = true;
    os << "$timescale " << timescaleNs << " ns $end\n";
    os << "$scope module edb $end\n";
    for (const auto &signal : signals) {
        if (signal.isReal) {
            os << "$var real 64 " << signal.id << ' ' << signal.name
               << " $end\n";
        } else {
            os << "$var wire 1 " << signal.id << ' ' << signal.name
               << " $end\n";
        }
    }
    os << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::advanceTo(sim::Tick when)
{
    writeHeaderIfNeeded();
    sim::Tick units =
        when / (static_cast<sim::Tick>(timescaleNs) * sim::oneNs);
    if (units != lastTime) {
        if (units < lastTime)
            sim::fatal("VcdWriter: time went backwards");
        os << '#' << units << '\n';
        lastTime = units;
    }
}

void
VcdWriter::changeReal(std::size_t handle, sim::Tick when, double value)
{
    const Signal &signal = signals.at(handle);
    if (!signal.isReal)
        sim::fatal("VcdWriter: ", signal.name, " is not real");
    advanceTo(when);
    os << 'r' << value << ' ' << signal.id << '\n';
}

void
VcdWriter::changeWire(std::size_t handle, sim::Tick when, bool value)
{
    const Signal &signal = signals.at(handle);
    if (signal.isReal)
        sim::fatal("VcdWriter: ", signal.name, " is not a wire");
    advanceTo(when);
    os << (value ? '1' : '0') << signal.id << '\n';
}

void
VcdWriter::finish(sim::Tick end_time)
{
    advanceTo(end_time);
}

} // namespace edb::trace
