#include "trace/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace edb::trace {

void
Summary::add(double x)
{
    ++n;
    total += x;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    if (n == 1) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
}

double
Summary::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::add(double x)
{
    samples.push_back(x);
    isSorted = false;
    stats.add(x);
}

const std::vector<double> &
SampleSet::sorted() const
{
    if (!isSorted) {
        std::sort(samples.begin(), samples.end());
        isSorted = true;
    }
    return samples;
}

double
SampleSet::quantile(double q) const
{
    if (samples.empty())
        return 0.0;
    const auto &s = sorted();
    if (q <= 0.0)
        return s.front();
    if (q >= 1.0)
        return s.back();
    double pos = q * static_cast<double>(s.size() - 1);
    std::size_t idx = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= s.size())
        return s.back();
    return s[idx] * (1.0 - frac) + s[idx + 1] * frac;
}

double
SampleSet::cdfAt(double x) const
{
    if (samples.empty())
        return 0.0;
    const auto &s = sorted();
    auto it = std::upper_bound(s.begin(), s.end(), x);
    return static_cast<double>(it - s.begin()) /
           static_cast<double>(s.size());
}

std::vector<std::pair<double, double>>
SampleSet::cdfSeries(std::size_t points) const
{
    std::vector<std::pair<double, double>> series;
    if (samples.empty() || points < 2)
        return series;
    const auto &s = sorted();
    double lo = s.front();
    double hi = s.back();
    double span = hi - lo;
    series.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        double x = lo + span * static_cast<double>(i) /
                            static_cast<double>(points - 1);
        series.emplace_back(x, cdfAt(x));
    }
    return series;
}

Histogram::Histogram(double lo_bound, double hi_bound, std::size_t bin_count)
    : lo(lo_bound), hi(hi_bound), counts(bin_count, 0)
{
    if (bin_count == 0 || hi_bound <= lo_bound)
        sim::fatal("Histogram: need bins > 0 and hi > lo");
}

void
Histogram::add(double x, std::size_t weight)
{
    if (weight == 0)
        return;
    double frac = (x - lo) / (hi - lo);
    auto idx = static_cast<std::int64_t>(
        frac * static_cast<double>(counts.size()));
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<std::int64_t>(counts.size()))
        idx = static_cast<std::int64_t>(counts.size()) - 1;
    counts[static_cast<std::size_t>(idx)] += weight;
    n += weight;
    sumX += x * static_cast<double>(weight);
}

double
Histogram::mean() const
{
    return n ? sumX / static_cast<double>(n) : 0.0;
}

double
Histogram::binCenter(std::size_t i) const
{
    double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + width * (static_cast<double>(i) + 0.5);
}

} // namespace edb::trace
