/**
 * @file
 * Trace record types and sinks.
 *
 * EDB's passive mode produces concurrent streams of energy samples,
 * program (watchpoint) events, I/O bus bytes and RFID messages. A
 * `TraceBuffer` collects them with timestamps so benches and tests can
 * correlate "changes in system behavior with changes in energy state"
 * exactly as the paper describes (Section 3.1).
 */

#ifndef EDB_TRACE_TRACE_HH
#define EDB_TRACE_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace edb::trace {

/** Kind of a trace record. */
enum class Kind : std::uint8_t
{
    EnergySample,   ///< Vcap / Vreg ADC sample.
    Watchpoint,     ///< Program event (code-marker pulse).
    IoByte,         ///< Byte observed on a wired bus.
    RfidMessage,    ///< Decoded RFID protocol message.
    Printf,         ///< Target printf output.
    AssertFail,     ///< Keep-alive assertion fired.
    Breakpoint,     ///< Breakpoint hit (code / energy / combined).
    EnergyGuard,    ///< Energy guard entered / exited.
    PowerEvent,     ///< Target turn-on / brown-out / tether change.
    Generic,        ///< Free-form annotation.
};

/** Human-readable name of a record kind. */
const char *kindName(Kind kind);

/**
 * One timestamped trace record. Numeric payloads live in `a`/`b`
 * (meaning depends on kind, documented per producer); `text` carries
 * printf output, message names and annotations.
 */
struct Record
{
    sim::Tick when = 0;
    Kind kind = Kind::Generic;
    double a = 0.0;
    double b = 0.0;
    std::uint32_t id = 0;
    std::string text;
};

/**
 * In-memory trace sink with filtering helpers.
 *
 * Also supports a tap callback so interactive tooling (the console)
 * can stream records as they arrive.
 */
class TraceBuffer
{
  public:
    using Tap = std::function<void(const Record &)>;

    /** Append a record. */
    void
    push(Record record)
    {
        if (tap)
            tap(record);
        if (enabled)
            records.push_back(std::move(record));
    }

    /** Convenience: append with fields. */
    void
    push(sim::Tick when, Kind kind, double a = 0.0, double b = 0.0,
         std::uint32_t id = 0, std::string text = {})
    {
        push(Record{when, kind, a, b, id, std::move(text)});
    }

    /** All records in arrival order. */
    const std::vector<Record> &all() const { return records; }

    /** Records of one kind, in order. */
    std::vector<Record> ofKind(Kind kind) const;

    /** Number of records of one kind. */
    std::size_t countOf(Kind kind) const;

    /** Drop all records. */
    void clear() { records.clear(); }

    /** Enable/disable retention (tap still fires when disabled). */
    void setEnabled(bool on) { enabled = on; }

    /** Install a streaming tap (replaces any existing tap). */
    void setTap(Tap t) { tap = std::move(t); }

    /** Write all records as CSV: time_ms,kind,id,a,b,text. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<Record> records;
    bool enabled = true;
    Tap tap;
};

} // namespace edb::trace

#endif // EDB_TRACE_TRACE_HH
