/**
 * @file
 * The simulated target device: a WISP 5 class energy-harvesting
 * platform (paper Section 5.1).
 *
 * `Wisp` assembles the MCU core, memories, power system, peripherals,
 * RF front end and accelerometer into one device with the WISP 5
 * electrical constants: a 47 uF storage capacitor, 2.4 V turn-on and
 * 1.8 V brown-out comparators, and an MSP430-like core drawing
 * ~0.5 mA at 4 MHz.
 *
 * Memory layout (`target::layout`): the NULL page is intentionally
 * unmapped so wild NULL-derived accesses fault (paper Fig 3's
 * corruption case study); volatile SRAM sits below the stack top,
 * and non-volatile FRAM holds code, application data and the
 * checkpoint slots.
 */

#ifndef EDB_TARGET_WISP_HH
#define EDB_TARGET_WISP_HH

#include <memory>
#include <string>

#include "energy/harvester.hh"
#include "energy/power_system.hh"
#include "isa/program.hh"
#include "mcu/adc.hh"
#include "mcu/debug_port.hh"
#include "mcu/gpio.hh"
#include "mcu/i2c.hh"
#include "mcu/led.hh"
#include "mcu/mcu.hh"
#include "mcu/mmio_map.hh"
#include "mcu/uart.hh"
#include "mem/memory.hh"
#include "mem/nv_region.hh"
#include "rfid/frontend.hh"
#include "sensors/accelerometer.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::rfid {
class RfChannel;
}

namespace edb::target {

/** Fixed address-space layout of the device. */
namespace layout {
/** Volatile SRAM (the NULL page below it is unmapped). */
constexpr mem::Addr sramBase = 0x0400;
constexpr mem::Addr sramSize = 0x3C00;
/** Initial stack pointer: the top of SRAM. */
constexpr mem::Addr stackTop = sramBase + sramSize;
/** Non-volatile FRAM: code, data, checkpoint slots. */
constexpr mem::Addr framBase = 0x4000;
constexpr mem::Addr framSize = 0xB000;
/** Peripheral page. */
constexpr mem::Addr mmioBase = mcu::mmio::base;
constexpr mem::Addr mmioSize = mcu::mmio::size;
} // namespace layout

/** Aggregate configuration of the device (WISP 5 defaults). */
struct WispConfig
{
    energy::PowerSystemConfig power = {};
    mcu::McuConfig mcu = {};
    /** Console UART (the energy-expensive printf path). */
    mcu::UartConfig uart = {};
    mcu::I2cConfig i2c = {};
    mcu::AdcConfig adc = {};
    mcu::DebugPortConfig debug = {};
    rfid::RfFrontendConfig rf = {};
    sensors::AccelConfig accel = {};
    /** LED current while lit (paper Section 2.2: ~5x the MCU). */
    double ledAmps = 4.0e-3;
    /**
     * NV technology of the FRAM region (mem/nv_region.hh). The
     * default is passive — bit-identical to the seed's plain Ram. An
     * active table (framTech()/flashTech()/sttMramTech()) turns on
     * per-write energy drain, wear tracking and, via
     * `writeExtraCycles`, the store latency the MCU charges
     * (overrides `mcu.framWriteExtraCycles` when nonzero).
     */
    mem::NvTechConfig nvTech = {};
};

/** The assembled target device. */
class Wisp : public sim::Component
{
  public:
    /**
     * @param harvester Ambient energy source (non-owning).
     * @param channel Optional RFID air interface; when present the
     *        tag front end is instantiated and attached.
     */
    Wisp(sim::Simulator &simulator, std::string component_name,
         const energy::Harvester *harvester,
         rfid::RfChannel *channel = nullptr, WispConfig config = {});

    /** Flash a program image (invalidates stale checkpoints). */
    void flash(const isa::Program &program);

    /** Begin the power system's self-ticking; call once. */
    void start();

    /// @name Subsystem access
    /// @{
    mcu::Mcu &mcu() { return core; }
    const mcu::Mcu &mcu() const { return core; }
    energy::PowerSystem &power() { return power_; }
    const energy::PowerSystem &power() const { return power_; }
    mem::MemoryMap &memoryMap() { return map; }
    mem::Ram &sramRegion() { return sram; }
    const mem::Ram &sramRegion() const { return sram; }
    mem::NvRegion &framRegion() { return fram; }
    const mem::NvRegion &framRegion() const { return fram; }
    mcu::Gpio &gpio() { return gpio_; }
    mcu::Uart &uart() { return uart_; }
    mcu::I2cController &i2c() { return i2c_; }
    mcu::Adc &adc() { return adc_; }
    mcu::Led &led() { return led_; }
    mcu::DebugPort &debugPort() { return debugPort_; }
    sensors::Accelerometer &accelerometer() { return accel_; }
    /** RF front end; nullptr when built without an air interface. */
    rfid::RfFrontend *rf() { return rf_.get(); }
    /// @}

    /** Core lifecycle state. */
    mcu::McuState state() const { return core.state(); }

    /** Storage-capacitor voltage (advances the analog model). */
    double voltage() { return power_.voltage(); }

    const WispConfig &config() const { return cfg; }

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Captures the event clock, the shared RNG and every subsystem.
    /// Restore protocol: construct a fresh Simulator (same seed) and
    /// Wisp (same config), `flash` the same program, do NOT `start`,
    /// then `restoreState` + `rearmer.flush()`; the restored run is
    /// bit-identical to the original continuing past the snapshot.
    /// Works in-place too (rewind), since every component cancels its
    /// own pending events before rearming.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    WispConfig cfg;
    sim::TimeCursor cursor;
    energy::PowerSystem power_;
    mem::Ram sram;
    mem::NvRegion fram;
    mem::MmioRegion mmio;
    mem::MemoryMap map;
    mcu::Gpio gpio_;
    mcu::Uart uart_;
    mcu::I2cController i2c_;
    mcu::Adc adc_;
    mcu::Led led_;
    mcu::DebugPort debugPort_;
    sensors::Accelerometer accel_;
    std::unique_ptr<rfid::RfFrontend> rf_;
    mcu::Mcu core;
};

} // namespace edb::target

#endif // EDB_TARGET_WISP_HH
