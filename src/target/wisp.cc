#include "target/wisp.hh"

#include "rfid/channel.hh"
#include "sim/snapshot.hh"

namespace edb::target {

namespace {

/** Fold the NV technology table into the MCU config before members
 *  initialize: a nonzero per-tech write latency overrides the
 *  McuConfig default so checkpoint costing and store costing agree
 *  with the technology the FRAM region models. */
WispConfig
withNvTech(WispConfig config)
{
    if (config.nvTech.writeExtraCycles != 0)
        config.mcu.framWriteExtraCycles =
            config.nvTech.writeExtraCycles;
    return config;
}

} // namespace

Wisp::Wisp(sim::Simulator &simulator, std::string component_name,
           const energy::Harvester *harvester,
           rfid::RfChannel *channel, WispConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cfg(withNvTech(std::move(config))),
      cursor(simulator),
      power_(simulator, name() + ".power", cfg.power, harvester),
      sram(name() + ".sram", layout::sramBase, layout::sramSize,
           mem::RegionKind::Sram),
      fram(name() + ".fram", layout::framBase, layout::framSize,
           mem::RegionKind::Fram, cfg.nvTech),
      mmio(name() + ".mmio", layout::mmioBase, layout::mmioSize),
      gpio_(simulator, name() + ".gpio", cursor),
      uart_(simulator, name() + ".uart0", cursor, power_, cfg.uart),
      i2c_(simulator, name() + ".i2c", cursor, power_, cfg.i2c),
      adc_(simulator, name() + ".adc", cursor, power_, cfg.adc),
      led_(simulator, name() + ".led", power_, cfg.ledAmps),
      debugPort_(simulator, name() + ".dbg", cursor, power_,
                 cfg.debug),
      accel_(simulator, name() + ".accel", cfg.accel),
      core(simulator, name() + ".mcu", cursor, map, power_, cfg.mcu)
{
    // Address space: NULL page unmapped (wild NULL-derived accesses
    // fault, paper Fig 3), SRAM, FRAM, peripheral page.
    map.addRegion(&sram);
    map.addRegion(&fram);
    map.addRegion(&mmio);

    // Peripheral registers.
    namespace m = mcu::mmio;
    gpio_.installMmio(mmio);
    uart_.installMmio(mmio, m::uart0Tx, m::uart0Status, m::uart0Rx);
    i2c_.installMmio(mmio);
    adc_.installMmio(mmio);
    led_.installMmio(mmio);
    debugPort_.installMmio(mmio);
    core.installMmio(mmio);

    // ADC channel 0 senses the storage capacitor (self-measurement,
    // the energy-costly path the paper contrasts with EDB).
    adc_.addChannel(0, [this] { return power_.voltage(); });

    // Sensor bus.
    i2c_.attach(&accel_);

    // NV backend: every modelled FRAM write draws its programming
    // charge straight from the storage capacitor (only while the rail
    // is up; a dead rail can't program cells). The core gets the
    // region handle for the checkpoint unit's commit-burst latch.
    fram.setEnergySink([this](double coulombs) {
        if (power_.poweredOn())
            power_.drawCharge(coulombs);
    });
    core.setNvRegion(&fram);

    // Optional RFID air interface.
    if (channel) {
        rf_ = std::make_unique<rfid::RfFrontend>(
            simulator, name() + ".rf", cursor, power_, *channel,
            cfg.rf);
        rf_->installMmio(mmio);
        channel->attachTag(rf_.get());
    }

    // A brown-out destroys volatile state: SRAM decays and every
    // peripheral resets (outputs low, FIFOs cleared).
    core.setResetHook([this] {
        sram.powerLoss();
        gpio_.powerLost();
        uart_.powerLost();
        i2c_.powerLost();
        adc_.powerLost();
        led_.powerLost();
        debugPort_.powerLost();
        if (rf_)
            rf_->powerLost();
    });
}

void
Wisp::flash(const isa::Program &program)
{
    core.loadProgram(program);
}

void
Wisp::start()
{
    power_.start();
}

void
Wisp::saveState(sim::SnapshotWriter &w) const
{
    w.section("wisp");
    w.tick(sim().now());
    w.tick(cursor.localTime());
    w.rng(sim().rng());
    power_.saveState(w);
    sram.saveState(w);
    fram.saveState(w);
    gpio_.saveState(w);
    uart_.saveState(w);
    i2c_.saveState(w);
    adc_.saveState(w);
    led_.saveState(w);
    debugPort_.saveState(w);
    accel_.saveState(w);
    w.boolean(rf_ != nullptr);
    if (rf_)
        rf_->saveState(w);
    core.saveState(w);
}

void
Wisp::restoreState(sim::SnapshotReader &r, sim::EventRearmer &rearmer)
{
    r.section("wisp");
    sim().restoreClock(r.tick());
    cursor.restoreLocal(r.tick());
    r.rng(sim().rng());
    power_.restoreState(r, rearmer);
    sram.restoreState(r);
    fram.restoreState(r);
    gpio_.restoreState(r);
    uart_.restoreState(r, rearmer);
    i2c_.restoreState(r, rearmer);
    adc_.restoreState(r, rearmer);
    led_.restoreState(r);
    debugPort_.restoreState(r, rearmer);
    accel_.restoreState(r);
    bool hasRf = r.boolean();
    if (hasRf != (rf_ != nullptr)) {
        // Snapshot taken on a device with a different RF build.
        r.invalidate();
        return;
    }
    if (rf_)
        rf_->restoreState(r, rearmer);
    core.restoreState(r, rearmer);
}

} // namespace edb::target
