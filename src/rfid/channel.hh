/**
 * @file
 * RF channel between an RFID reader and a tag front end.
 *
 * Frames take real on-air time and may be corrupted in flight. The
 * channel exposes *wire taps*: listeners that see the demodulated
 * bitstream regardless of whether the tag was powered to receive it.
 * This is the electrical point where EDB attaches its external RFID
 * decoder (paper Section 4.1.2: "messages can be decoded even if the
 * target does not correctly decode them due to power failures").
 */

#ifndef EDB_RFID_CHANNEL_HH
#define EDB_RFID_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rfid/protocol.hh"
#include "sim/simulator.hh"

namespace edb::rfid {

class RfFrontend;
class RfidReader;

/** Channel configuration. */
struct ChannelConfig
{
    /** Reader-to-tag (forward link) bitrate. */
    double downlinkBps = 40e3;
    /** Tag-to-reader (backscatter) bitrate. */
    double uplinkBps = 160e3;
    /** Probability a frame is corrupted in flight. */
    double corruptionProbability = 0.03;
};

/** Bidirectional message-level RF channel. */
class RfChannel : public sim::Component
{
  public:
    /** Wire tap: (direction, frame, completion time). */
    using Tap =
        std::function<void(Direction, const Frame &, sim::Tick)>;

    RfChannel(sim::Simulator &simulator, std::string component_name,
              ChannelConfig config = {});

    /** Attach the tag-side front end (non-owning). */
    void attachTag(RfFrontend *tag_frontend) { tag = tag_frontend; }

    /** Attach the reader (non-owning). */
    void attachReader(RfidReader *rfid_reader) { reader = rfid_reader; }

    /** Attach a wire tap (EDB's RFID monitor). */
    void addTap(Tap tap);

    /**
     * Transmit a frame. Delivery is scheduled after the on-air time;
     * wire taps always fire, endpoint delivery depends on the
     * receiver's state at completion.
     * @param when Transmit start time (supports MCU local time).
     */
    void send(Direction direction, Frame frame, sim::Tick when);

    /** On-air duration of a frame in the given direction. */
    sim::Tick airTime(Direction direction, const Frame &frame) const;

    const ChannelConfig &config() const { return cfg; }

    /// @name Statistics
    /// @{
    std::uint64_t framesSent(Direction direction) const;
    std::uint64_t framesCorrupted() const { return corrupted; }
    /// @}

  private:
    void deliver(Direction direction, Frame frame, sim::Tick when);

    ChannelConfig cfg;
    RfFrontend *tag = nullptr;
    RfidReader *reader = nullptr;
    std::vector<Tap> taps;
    std::uint64_t downFrames = 0;
    std::uint64_t upFrames = 0;
    std::uint64_t corrupted = 0;
};

/**
 * Shared RF environment parameters for fleet-scale simulation
 * (DESIGN.md §12): one reader illuminating many tags. Worlds consume
 * the *effects* (incident power windows, slot grants) — the model
 * itself lives outside any single world's simulator so it can be
 * evaluated once, sequentially, at each epoch barrier.
 */
struct RfEnvConfig
{
    /** Reader transmit power (paper setup: 30 dBm). */
    double txPowerDbm = 30.0;
    /** Fraction of each epoch the carrier illuminates the field. */
    double dutyCycle = 0.85;
    /** Tag-to-reader distance distribution (uniform in [min, max]). */
    double minDistanceM = 0.6;
    double maxDistanceM = 2.4;
    /** Initial Q: an inventory round offers 2^Q reply slots. */
    unsigned initialQ = 4;
    unsigned minQ = 1;
    unsigned maxQ = 12;
    /**
     * Post-collision backoff: a collided tag loses this fraction of
     * the next epoch's carrier (the reader spends it re-arbitrating
     * with others), coupling channel contention back into the energy
     * model.
     */
    double collisionBackoff = 0.5;
};

/** Outcome of one tag's reply attempt in an arbitration round. */
enum class SlotOutcome : std::uint8_t
{
    Won,      ///< Sole occupant of its slot; reply decoded.
    Collided, ///< Shared a slot; all occupants lost.
};

/**
 * Slotted collision/arbitration model (EPC Gen2 flavoured): each
 * attempting tag hashes into one of 2^Q slots; a slot with exactly
 * one occupant is a decoded reply, a slot with more is a collision
 * that destroys every occupant's reply. Q adapts per round the way
 * the reader's Q-algorithm does — more collisions than singles grows
 * the frame, a mostly-idle frame shrinks it.
 *
 * Determinism contract (the fleet's epoch barrier depends on it):
 * `resolve` is a pure function of (constructor seed, round index,
 * attempt list) — slot choice is a splitmix64 hash, not an RNG draw,
 * so outcomes are independent of call interleaving and bit-identical
 * across shard counts. Callers must present attempts in a canonical
 * order (the fleet uses world-index order).
 */
class SlottedArbiter
{
  public:
    explicit SlottedArbiter(RfEnvConfig config = {},
                            std::uint64_t seed = 1);

    /**
     * Resolve one arbitration round.
     * @param round Monotone round (epoch) index.
     * @param tags Attempting tag ids, canonical order.
     * @return Per-attempt outcomes, same order as `tags`.
     */
    std::vector<SlotOutcome> resolve(std::uint64_t round,
                                     const std::vector<std::uint32_t> &tags);

    /** Current frame-size exponent (slots = 2^q). */
    unsigned q() const { return q_; }

    /// @name Statistics
    /// @{
    std::uint64_t roundsResolved() const { return rounds; }
    std::uint64_t singlesTotal() const { return singles; }
    std::uint64_t collisionsTotal() const { return collisions; }
    std::uint64_t idleSlotsTotal() const { return idles; }
    /// @}

    const RfEnvConfig &config() const { return cfg; }

  private:
    RfEnvConfig cfg;
    std::uint64_t seed_;
    unsigned q_;
    std::uint64_t rounds = 0;
    std::uint64_t singles = 0;
    std::uint64_t collisions = 0;
    std::uint64_t idles = 0;
};

} // namespace edb::rfid

#endif // EDB_RFID_CHANNEL_HH
