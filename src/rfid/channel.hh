/**
 * @file
 * RF channel between an RFID reader and a tag front end.
 *
 * Frames take real on-air time and may be corrupted in flight. The
 * channel exposes *wire taps*: listeners that see the demodulated
 * bitstream regardless of whether the tag was powered to receive it.
 * This is the electrical point where EDB attaches its external RFID
 * decoder (paper Section 4.1.2: "messages can be decoded even if the
 * target does not correctly decode them due to power failures").
 */

#ifndef EDB_RFID_CHANNEL_HH
#define EDB_RFID_CHANNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "rfid/protocol.hh"
#include "sim/simulator.hh"

namespace edb::rfid {

class RfFrontend;
class RfidReader;

/** Channel configuration. */
struct ChannelConfig
{
    /** Reader-to-tag (forward link) bitrate. */
    double downlinkBps = 40e3;
    /** Tag-to-reader (backscatter) bitrate. */
    double uplinkBps = 160e3;
    /** Probability a frame is corrupted in flight. */
    double corruptionProbability = 0.03;
};

/** Bidirectional message-level RF channel. */
class RfChannel : public sim::Component
{
  public:
    /** Wire tap: (direction, frame, completion time). */
    using Tap =
        std::function<void(Direction, const Frame &, sim::Tick)>;

    RfChannel(sim::Simulator &simulator, std::string component_name,
              ChannelConfig config = {});

    /** Attach the tag-side front end (non-owning). */
    void attachTag(RfFrontend *tag_frontend) { tag = tag_frontend; }

    /** Attach the reader (non-owning). */
    void attachReader(RfidReader *rfid_reader) { reader = rfid_reader; }

    /** Attach a wire tap (EDB's RFID monitor). */
    void addTap(Tap tap);

    /**
     * Transmit a frame. Delivery is scheduled after the on-air time;
     * wire taps always fire, endpoint delivery depends on the
     * receiver's state at completion.
     * @param when Transmit start time (supports MCU local time).
     */
    void send(Direction direction, Frame frame, sim::Tick when);

    /** On-air duration of a frame in the given direction. */
    sim::Tick airTime(Direction direction, const Frame &frame) const;

    const ChannelConfig &config() const { return cfg; }

    /// @name Statistics
    /// @{
    std::uint64_t framesSent(Direction direction) const;
    std::uint64_t framesCorrupted() const { return corrupted; }
    /// @}

  private:
    void deliver(Direction direction, Frame frame, sim::Tick when);

    ChannelConfig cfg;
    RfFrontend *tag = nullptr;
    RfidReader *reader = nullptr;
    std::vector<Tap> taps;
    std::uint64_t downFrames = 0;
    std::uint64_t upFrames = 0;
    std::uint64_t corrupted = 0;
};

} // namespace edb::rfid

#endif // EDB_RFID_CHANNEL_HH
