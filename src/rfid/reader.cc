#include "rfid/reader.hh"

#include "rfid/channel.hh"

namespace edb::rfid {

RfidReader::RfidReader(sim::Simulator &simulator,
                       std::string component_name, RfChannel &rf_channel,
                       ReaderConfig config)
    : sim::Component(simulator, std::move(component_name)),
      channel(rf_channel),
      cfg(config)
{
    channel.attachReader(this);
}

void
RfidReader::start()
{
    if (active)
        return;
    active = true;
    slotIndex = 0;
    slotEvent = sim().scheduleIn(0, [this] { slot(); });
}

void
RfidReader::stop()
{
    active = false;
    if (slotEvent != sim::invalidEventId) {
        sim().cancel(slotEvent);
        slotEvent = sim::invalidEventId;
    }
}

void
RfidReader::slot()
{
    slotEvent = sim::invalidEventId;
    if (!active)
        return;
    Frame frame;
    frame.type = slotIndex == 0 ? MsgType::CmdQuery
                                : MsgType::CmdQueryRep;
    // Session / slot-count parameters as a 2-byte payload.
    frame.payload = {static_cast<std::uint8_t>(slotIndex), 0x20};
    channel.send(Direction::ReaderToTag, frame, now());
    ++queries;
    slotIndex = (slotIndex + 1) % cfg.slotsPerRound;
    slotEvent = sim().scheduleIn(cfg.slotPeriod, [this] { slot(); });
}

void
RfidReader::frameArrived(const Frame &frame, sim::Tick)
{
    if (frame.corrupted) {
        ++corrupt;
        return;
    }
    if (frame.type == MsgType::RspGeneric)
        ++replies;
}

double
RfidReader::responseRate() const
{
    if (queries == 0)
        return 0.0;
    return static_cast<double>(replies) / static_cast<double>(queries);
}

} // namespace edb::rfid
