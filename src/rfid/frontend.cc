#include "rfid/frontend.hh"

#include "mcu/mmio_map.hh"
#include "rfid/channel.hh"

namespace edb::rfid {

RfFrontend::RfFrontend(sim::Simulator &simulator,
                       std::string component_name,
                       sim::TimeCursor &time_cursor,
                       energy::PowerSystem &power_sys,
                       RfChannel &rf_channel, RfFrontendConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      power(power_sys),
      channel(rf_channel),
      cfg(config)
{
    txLoad = power.addLoad(name() + ".tx", cfg.txActiveAmps, false);
    channel.attachTag(this);
}

void
RfFrontend::installMmio(mem::MmioRegion &mmio)
{
    namespace m = mcu::mmio;
    mmio.addRegister(
        m::rfRxStatus, name() + ".rxStatus",
        [this] { return rxFifo.empty() ? 0u : 1u; }, nullptr);
    mmio.addRegister(
        m::rfRxLen, name() + ".rxLen",
        [this] {
            return rxFifo.empty()
                       ? 0u
                       : static_cast<std::uint32_t>(
                             rxFifo.front().size());
        },
        nullptr);
    mmio.addRegister(
        m::rfRxByte, name() + ".rxByte",
        [this]() -> std::uint32_t {
            if (rxFifo.empty())
                return 0;
            auto &frame = rxFifo.front();
            if (frame.empty()) {
                rxFifo.pop_front();
                return 0;
            }
            std::uint8_t b = frame.front();
            frame.pop_front();
            if (frame.empty())
                rxFifo.pop_front();
            return b;
        },
        nullptr);
    mmio.addRegister(
        m::rfTxByte, name() + ".txByte", nullptr,
        [this](std::uint32_t v) {
            txFrame.push_back(static_cast<std::uint8_t>(v));
        });
    mmio.addRegister(
        m::rfTxCtrl, name() + ".txCtrl", nullptr,
        [this](std::uint32_t v) {
            if (v == 1)
                startTx();
        });
    mmio.addRegister(
        m::rfTxStatus, name() + ".txStatus",
        [this] { return txActive ? 1u : 0u; }, nullptr);
}

void
RfFrontend::frameArrived(const Frame &frame)
{
    // An unpowered demodulator latches nothing: the defining reason
    // tag response rate tracks the energy state (paper Fig 12).
    if (!power.poweredOn()) {
        ++rxDropped;
        return;
    }
    if (rxFifo.size() >= cfg.rxFifoDepth) {
        ++rxDropped;
        return;
    }
    std::deque<std::uint8_t> bytes;
    bytes.push_back(static_cast<std::uint8_t>(frame.type));
    for (std::uint8_t b : frame.payload)
        bytes.push_back(b);
    rxFifo.push_back(std::move(bytes));
    ++rxCount;
}

void
RfFrontend::startTx()
{
    if (txActive || txFrame.empty())
        return;
    txActive = true;
    power.setLoadEnabled(txLoad, true);
    Frame frame;
    frame.type = static_cast<MsgType>(txFrame.front());
    frame.payload.assign(txFrame.begin() + 1, txFrame.end());
    txFrame.clear();
    sim::Tick when = cursor.now();
    channel.send(Direction::TagToReader, frame, when);
    txEvent = sim().schedule(
        when + channel.airTime(Direction::TagToReader, frame),
        [this] { finishTx(); });
}

void
RfFrontend::finishTx()
{
    txEvent = sim::invalidEventId;
    if (!txActive)
        return;
    txActive = false;
    power.setLoadEnabled(txLoad, false);
    ++txCount;
}

void
RfFrontend::powerLost()
{
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    txActive = false;
    power.setLoadEnabled(txLoad, false);
    rxFifo.clear();
    txFrame.clear();
}

} // namespace edb::rfid
