#include "rfid/frontend.hh"

#include "mcu/mmio_map.hh"
#include "rfid/channel.hh"
#include "sim/snapshot.hh"

namespace edb::rfid {

RfFrontend::RfFrontend(sim::Simulator &simulator,
                       std::string component_name,
                       sim::TimeCursor &time_cursor,
                       energy::PowerSystem &power_sys,
                       RfChannel &rf_channel, RfFrontendConfig config)
    : sim::Component(simulator, std::move(component_name)),
      cursor(time_cursor),
      power(power_sys),
      channel(rf_channel),
      cfg(config)
{
    txLoad = power.addLoad(name() + ".tx", cfg.txActiveAmps, false);
    channel.attachTag(this);
}

void
RfFrontend::installMmio(mem::MmioRegion &mmio)
{
    namespace m = mcu::mmio;
    mmio.addRegister(
        m::rfRxStatus, name() + ".rxStatus",
        [this] { return rxFifo.empty() ? 0u : 1u; }, nullptr);
    mmio.addRegister(
        m::rfRxLen, name() + ".rxLen",
        [this] {
            return rxFifo.empty()
                       ? 0u
                       : static_cast<std::uint32_t>(
                             rxFifo.front().size());
        },
        nullptr);
    mmio.addRegister(
        m::rfRxByte, name() + ".rxByte",
        [this]() -> std::uint32_t {
            if (rxFifo.empty())
                return 0;
            auto &frame = rxFifo.front();
            if (frame.empty()) {
                rxFifo.pop_front();
                return 0;
            }
            std::uint8_t b = frame.front();
            frame.pop_front();
            if (frame.empty())
                rxFifo.pop_front();
            return b;
        },
        nullptr);
    mmio.addRegister(
        m::rfTxByte, name() + ".txByte", nullptr,
        [this](std::uint32_t v) {
            txFrame.push_back(static_cast<std::uint8_t>(v));
        });
    mmio.addRegister(
        m::rfTxCtrl, name() + ".txCtrl", nullptr,
        [this](std::uint32_t v) {
            if (v == 1)
                startTx();
        });
    mmio.addRegister(
        m::rfTxStatus, name() + ".txStatus",
        [this] { return txActive ? 1u : 0u; }, nullptr);
}

void
RfFrontend::frameArrived(const Frame &frame)
{
    // An unpowered demodulator latches nothing: the defining reason
    // tag response rate tracks the energy state (paper Fig 12).
    if (!power.poweredOn()) {
        ++rxDropped;
        return;
    }
    if (rxFifo.size() >= cfg.rxFifoDepth) {
        ++rxDropped;
        return;
    }
    std::deque<std::uint8_t> bytes;
    bytes.push_back(static_cast<std::uint8_t>(frame.type));
    for (std::uint8_t b : frame.payload)
        bytes.push_back(b);
    rxFifo.push_back(std::move(bytes));
    ++rxCount;
}

void
RfFrontend::startTx()
{
    if (txActive || txFrame.empty())
        return;
    txActive = true;
    power.setLoadEnabled(txLoad, true);
    Frame frame;
    frame.type = static_cast<MsgType>(txFrame.front());
    frame.payload.assign(txFrame.begin() + 1, txFrame.end());
    txFrame.clear();
    sim::Tick when = cursor.now();
    channel.send(Direction::TagToReader, frame, when);
    txDueAt = when + channel.airTime(Direction::TagToReader, frame);
    txEvent = sim().schedule(txDueAt, [this] { finishTx(); });
}

void
RfFrontend::finishTx()
{
    txEvent = sim::invalidEventId;
    if (!txActive)
        return;
    txActive = false;
    power.setLoadEnabled(txLoad, false);
    ++txCount;
}

void
RfFrontend::powerLost()
{
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    txActive = false;
    power.setLoadEnabled(txLoad, false);
    rxFifo.clear();
    txFrame.clear();
}

void
RfFrontend::saveState(sim::SnapshotWriter &w) const
{
    w.section("rf");
    w.u32(static_cast<std::uint32_t>(rxFifo.size()));
    for (const auto &frame : rxFifo) {
        w.u32(static_cast<std::uint32_t>(frame.size()));
        for (std::uint8_t b : frame)
            w.u8(b);
    }
    w.u32(static_cast<std::uint32_t>(txFrame.size()));
    for (std::uint8_t b : txFrame)
        w.u8(b);
    w.boolean(txActive);
    w.u64(rxCount);
    w.u64(txCount);
    w.u64(rxDropped);
    w.pendingEvent(txEvent, txDueAt);
}

void
RfFrontend::restoreState(sim::SnapshotReader &r,
                         sim::EventRearmer &rearmer)
{
    r.section("rf");
    rxFifo.clear();
    std::uint32_t nframes = r.u32();
    for (std::uint32_t i = 0; i < nframes && r.ok(); ++i) {
        std::deque<std::uint8_t> frame;
        std::uint32_t len = r.u32();
        for (std::uint32_t j = 0; j < len && r.ok(); ++j)
            frame.push_back(r.u8());
        rxFifo.push_back(std::move(frame));
    }
    txFrame.clear();
    std::uint32_t txlen = r.u32();
    for (std::uint32_t i = 0; i < txlen && r.ok(); ++i)
        txFrame.push_back(r.u8());
    txActive = r.boolean();
    rxCount = r.u64();
    txCount = r.u64();
    rxDropped = r.u64();
    if (txEvent != sim::invalidEventId) {
        sim().cancel(txEvent);
        txEvent = sim::invalidEventId;
    }
    r.pendingEvent(
        rearmer, [this] { finishTx(); },
        [this](sim::EventId id, sim::Tick due) {
            txEvent = id;
            txDueAt = due;
        });
}

} // namespace edb::rfid
