#include "rfid/protocol.hh"

namespace edb::rfid {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::CmdQuery: return "CMD_QUERY";
      case MsgType::CmdQueryRep: return "CMD_QUERYREP";
      case MsgType::CmdAck: return "CMD_ACK";
      case MsgType::RspGeneric: return "RSP_GENERIC";
    }
    return "UNKNOWN";
}

} // namespace edb::rfid
