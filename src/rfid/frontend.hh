/**
 * @file
 * Tag-side RF front end: demodulator RX FIFO and backscatter TX.
 *
 * The target's firmware (the WISP RFID application of paper
 * Section 5.3.4) decodes frames from this peripheral in software and
 * assembles replies byte by byte. An unpowered tag cannot latch
 * frames — which is exactly why the response rate correlates with
 * the energy trace in Figure 12.
 */

#ifndef EDB_RFID_FRONTEND_HH
#define EDB_RFID_FRONTEND_HH

#include <cstdint>
#include <deque>
#include <string>

#include "energy/power_system.hh"
#include "mem/memory.hh"
#include "rfid/protocol.hh"
#include "sim/simulator.hh"
#include "sim/time_cursor.hh"

namespace edb::sim {
class SnapshotWriter;
class SnapshotReader;
class EventRearmer;
} // namespace edb::sim

namespace edb::rfid {

class RfChannel;

/** Front-end configuration. */
struct RfFrontendConfig
{
    /** Extra supply current while backscattering a reply. */
    double txActiveAmps = 0.15e-3;
    /** RX FIFO depth in frames. */
    std::size_t rxFifoDepth = 4;
};

/** Demodulator / modulator pair of the tag. */
class RfFrontend : public sim::Component
{
  public:
    RfFrontend(sim::Simulator &simulator, std::string component_name,
               sim::TimeCursor &cursor, energy::PowerSystem &power,
               RfChannel &channel, RfFrontendConfig config = {});

    /** Install RX/TX registers into the MMIO region. */
    void installMmio(mem::MmioRegion &mmio);

    /** Channel-side delivery of a demodulated frame. */
    void frameArrived(const Frame &frame);

    /** True while a reply is being backscattered. */
    bool txBusy() const { return txActive; }

    /** Frames waiting in the RX FIFO. */
    std::size_t rxPending() const { return rxFifo.size(); }

    /** Reset on power loss. */
    void powerLost();

    /// @name Statistics
    /// @{
    std::uint64_t framesReceived() const { return rxCount; }
    std::uint64_t framesTransmitted() const { return txCount; }
    std::uint64_t framesDroppedUnpowered() const { return rxDropped; }
    /// @}

    /// @name Snapshot support (see sim/snapshot.hh)
    /// Restoring mid-backscatter rearms the completion event but does
    /// not re-send on the channel: the original frame is already in
    /// flight from the saved run's perspective, and reader-side state
    /// is outside the tag snapshot boundary.
    /// @{
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r,
                      sim::EventRearmer &rearmer);
    /// @}

  private:
    void startTx();
    void finishTx();

    sim::TimeCursor &cursor;
    energy::PowerSystem &power;
    RfChannel &channel;
    RfFrontendConfig cfg;
    energy::PowerSystem::LoadHandle txLoad;

    /** RX FIFO of (type + payload) byte streams. */
    std::deque<std::deque<std::uint8_t>> rxFifo;
    std::vector<std::uint8_t> txFrame;
    bool txActive = false;
    sim::EventId txEvent = sim::invalidEventId;
    sim::Tick txDueAt = 0;

    std::uint64_t rxCount = 0;
    std::uint64_t txCount = 0;
    std::uint64_t rxDropped = 0;
};

} // namespace edb::rfid

#endif // EDB_RFID_FRONTEND_HH
