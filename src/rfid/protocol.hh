/**
 * @file
 * Gen2-lite RFID protocol message definitions.
 *
 * A simplified EPC Gen2-style inventory protocol carrying exactly the
 * message vocabulary visible in the paper's Figure 12 trace:
 * CMD_QUERY / CMD_QUERYREP from the reader, RSP_GENERIC (the tag's
 * identifier reply) from the tag.
 */

#ifndef EDB_RFID_PROTOCOL_HH
#define EDB_RFID_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace edb::rfid {

/** Message types on the air interface. */
enum class MsgType : std::uint8_t
{
    CmdQuery = 0x01,    ///< Reader: start of an inventory round.
    CmdQueryRep = 0x02, ///< Reader: repeat slot within a round.
    CmdAck = 0x03,      ///< Reader: acknowledge a tag reply.
    RspGeneric = 0x10,  ///< Tag: identifier reply.
};

/** Wire name of a message type (matches the paper's Fig 12 labels). */
const char *msgTypeName(MsgType type);

/** A framed message on the air interface. */
struct Frame
{
    MsgType type = MsgType::CmdQuery;
    std::vector<std::uint8_t> payload;
    /** True when the channel corrupted the frame in flight. */
    bool corrupted = false;

    /** Bytes on the wire including the type byte. */
    std::size_t wireBytes() const { return payload.size() + 1; }
};

/** Direction of travel on the air interface. */
enum class Direction : std::uint8_t
{
    ReaderToTag, ///< The target's "RF Data - RX" line.
    TagToReader, ///< The target's "RF Data - TX" line.
};

} // namespace edb::rfid

#endif // EDB_RFID_PROTOCOL_HH
