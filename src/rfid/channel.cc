#include "rfid/channel.hh"

#include "rfid/frontend.hh"
#include "rfid/reader.hh"

namespace edb::rfid {

RfChannel::RfChannel(sim::Simulator &simulator,
                     std::string component_name, ChannelConfig config)
    : sim::Component(simulator, std::move(component_name)), cfg(config)
{}

void
RfChannel::addTap(Tap tap)
{
    taps.push_back(std::move(tap));
}

sim::Tick
RfChannel::airTime(Direction direction, const Frame &frame) const
{
    double bps = direction == Direction::ReaderToTag ? cfg.downlinkBps
                                                     : cfg.uplinkBps;
    double seconds = static_cast<double>(frame.wireBytes()) * 8.0 / bps;
    return sim::ticksFromSeconds(seconds);
}

void
RfChannel::send(Direction direction, Frame frame, sim::Tick when)
{
    if (direction == Direction::ReaderToTag)
        ++downFrames;
    else
        ++upFrames;
    if (sim().rng().chance(cfg.corruptionProbability)) {
        frame.corrupted = true;
        ++corrupted;
    }
    sim::Tick done = when + airTime(direction, frame);
    sim().schedule(done, [this, direction, frame = std::move(frame),
                          done]() mutable {
        deliver(direction, std::move(frame), done);
    });
}

void
RfChannel::deliver(Direction direction, Frame frame, sim::Tick when)
{
    // Wire taps see everything, including corrupted frames and
    // frames the endpoint misses — EDB's external decoder hangs here.
    for (const auto &tap : taps)
        tap(direction, frame, when);
    if (direction == Direction::ReaderToTag) {
        // The tag's front end CRC-drops corrupted frames in hardware.
        if (tag && !frame.corrupted)
            tag->frameArrived(frame);
    } else if (reader) {
        // The reader sees corrupted replies as undecodable noise and
        // counts them separately.
        reader->frameArrived(frame, when);
    }
}

std::uint64_t
RfChannel::framesSent(Direction direction) const
{
    return direction == Direction::ReaderToTag ? downFrames : upFrames;
}

SlottedArbiter::SlottedArbiter(RfEnvConfig config, std::uint64_t seed)
    : cfg(config), seed_(seed), q_(config.initialQ)
{
    if (q_ < cfg.minQ)
        q_ = cfg.minQ;
    if (q_ > cfg.maxQ)
        q_ = cfg.maxQ;
}

std::vector<SlotOutcome>
SlottedArbiter::resolve(std::uint64_t round,
                        const std::vector<std::uint32_t> &tags)
{
    const std::uint64_t slots = std::uint64_t{1} << q_;
    // Occupancy by hashed slot choice. Slot choice is a pure hash of
    // (seed, round, tag) so the outcome cannot depend on resolution
    // order or thread schedule.
    std::vector<std::uint64_t> chosen(tags.size());
    std::vector<std::uint32_t> occupancy(slots, 0);
    for (std::size_t i = 0; i < tags.size(); ++i) {
        std::uint64_t h = sim::splitmix64(
            seed_ ^ sim::splitmix64(round * 0x9E3779B97F4A7C15ULL ^
                                    tags[i]));
        chosen[i] = h & (slots - 1);
        ++occupancy[chosen[i]];
    }
    std::vector<SlotOutcome> out(tags.size());
    std::uint64_t roundSingles = 0, roundCollided = 0;
    for (std::size_t i = 0; i < tags.size(); ++i) {
        if (occupancy[chosen[i]] == 1) {
            out[i] = SlotOutcome::Won;
            ++roundSingles;
        } else {
            out[i] = SlotOutcome::Collided;
            ++roundCollided;
        }
    }
    std::uint64_t occupied = 0;
    for (std::uint32_t c : occupancy)
        occupied += c != 0;
    ++rounds;
    singles += roundSingles;
    collisions += roundCollided;
    idles += slots - occupied;
    // Gen2-style Q adaptation, on round totals (deterministic).
    if (roundCollided > roundSingles && q_ < cfg.maxQ)
        ++q_;
    else if (roundCollided == 0 && occupied * 2 < slots &&
             q_ > cfg.minQ)
        --q_;
    return out;
}

} // namespace edb::rfid
