#include "rfid/channel.hh"

#include "rfid/frontend.hh"
#include "rfid/reader.hh"

namespace edb::rfid {

RfChannel::RfChannel(sim::Simulator &simulator,
                     std::string component_name, ChannelConfig config)
    : sim::Component(simulator, std::move(component_name)), cfg(config)
{}

void
RfChannel::addTap(Tap tap)
{
    taps.push_back(std::move(tap));
}

sim::Tick
RfChannel::airTime(Direction direction, const Frame &frame) const
{
    double bps = direction == Direction::ReaderToTag ? cfg.downlinkBps
                                                     : cfg.uplinkBps;
    double seconds = static_cast<double>(frame.wireBytes()) * 8.0 / bps;
    return sim::ticksFromSeconds(seconds);
}

void
RfChannel::send(Direction direction, Frame frame, sim::Tick when)
{
    if (direction == Direction::ReaderToTag)
        ++downFrames;
    else
        ++upFrames;
    if (sim().rng().chance(cfg.corruptionProbability)) {
        frame.corrupted = true;
        ++corrupted;
    }
    sim::Tick done = when + airTime(direction, frame);
    sim().schedule(done, [this, direction, frame = std::move(frame),
                          done]() mutable {
        deliver(direction, std::move(frame), done);
    });
}

void
RfChannel::deliver(Direction direction, Frame frame, sim::Tick when)
{
    // Wire taps see everything, including corrupted frames and
    // frames the endpoint misses — EDB's external decoder hangs here.
    for (const auto &tap : taps)
        tap(direction, frame, when);
    if (direction == Direction::ReaderToTag) {
        // The tag's front end CRC-drops corrupted frames in hardware.
        if (tag && !frame.corrupted)
            tag->frameArrived(frame);
    } else if (reader) {
        // The reader sees corrupted replies as undecodable noise and
        // counts them separately.
        reader->frameArrived(frame, when);
    }
}

std::uint64_t
RfChannel::framesSent(Direction direction) const
{
    return direction == Direction::ReaderToTag ? downFrames : upFrames;
}

} // namespace edb::rfid
