/**
 * @file
 * RFID reader model (the Impinj Speedway stand-in).
 *
 * Continuously inventories tags: each round opens with CMD_QUERY
 * followed by CMD_QUERYREP slots, matching the paper's setup
 * ("the reader is configured to continuously inventory tags",
 * Section 5.1). Counts queries and tag replies so the benches can
 * report the Fig 12 response rate (paper: 86%, ~13 replies/s).
 */

#ifndef EDB_RFID_READER_HH
#define EDB_RFID_READER_HH

#include <cstdint>
#include <string>

#include "rfid/protocol.hh"
#include "sim/simulator.hh"

namespace edb::rfid {

class RfChannel;

/** Reader configuration. */
struct ReaderConfig
{
    /** Slot period between consecutive commands. */
    sim::Tick slotPeriod = 65 * sim::oneMs;
    /** Slots per inventory round (first slot is CMD_QUERY). */
    unsigned slotsPerRound = 8;
};

/** Inventorying RFID reader. */
class RfidReader : public sim::Component
{
  public:
    RfidReader(sim::Simulator &simulator, std::string component_name,
               RfChannel &channel, ReaderConfig config = {});

    /** Begin the continuous inventory loop. */
    void start();

    /** Stop issuing queries. */
    void stop();

    /** Channel-side delivery of a tag reply. */
    void frameArrived(const Frame &frame, sim::Tick when);

    /// @name Statistics
    /// @{
    std::uint64_t queriesSent() const { return queries; }
    std::uint64_t repliesReceived() const { return replies; }
    std::uint64_t corruptReplies() const { return corrupt; }
    /** Replies / queries, the Fig 12 response-rate metric. */
    double responseRate() const;
    /// @}

  private:
    void slot();

    RfChannel &channel;
    ReaderConfig cfg;
    bool active = false;
    unsigned slotIndex = 0;
    sim::EventId slotEvent = sim::invalidEventId;
    std::uint64_t queries = 0;
    std::uint64_t replies = 0;
    std::uint64_t corrupt = 0;
};

} // namespace edb::rfid

#endif // EDB_RFID_READER_HH
