#include "runtime/checkpoint.hh"

#include <cmath>

namespace edb::runtime {

unsigned
adcCodeForVolts(double volts, unsigned bits, double vref_volts)
{
    double full = static_cast<double>((1u << bits) - 1);
    double code = volts / vref_volts * full;
    if (code < 0.0)
        code = 0.0;
    if (code > full)
        code = full;
    return static_cast<unsigned>(std::lround(code));
}

std::string
checkpointSource()
{
    // Note the cost structure the paper highlights: the conditional
    // variant spends time and energy on an ADC conversion every call
    // ("doing so uses energy, perturbing the energy state being
    // measured"), plus the FRAM write burst when it checkpoints.
    return R"(
; ---------------------------------------------------------------
; Checkpointing runtime (Mementos-style voltage-conditional +
; QuickRecall-style hardware-assisted checkpoint)
; ---------------------------------------------------------------

; rt_checkpoint: take a checkpoint unconditionally. r0 = 1 on
; success (hardware unit enabled and slot fit), 0 otherwise.
;
; The CHKPT instruction is also the commit point the NV consistency
; auditor observes (mem/nv_audit.hh): a successful checkpoint closes
; the reboot interval's open write-after-read records and commits the
; shadow FRAM. A failed checkpoint (r0 = 0: unit disabled or stack
; overflow) commits nothing -- open records stay live, so a later
; power failure still reports them.
rt_checkpoint:
    chkpt
    ret

; rt_checkpoint_if_low: r1 = ADC threshold code. Samples Vcap on
; ADC channel 0; checkpoints when the reading is strictly below the
; threshold (bgeu: a reading equal to the threshold code skips).
; r0 = 1 if a checkpoint was taken.
rt_checkpoint_if_low:
    la   r0, ADC_CTRL
    li   r2, 0                ; channel 0 = Vcap
    stw  r2, [r0]
    la   r0, ADC_STATUS
__rt_ck_wait:
    ldw  r2, [r0]
    andi r2, r2, 2
    cmpi r2, 0
    beq  __rt_ck_wait
    la   r0, ADC_VALUE
    ldw  r2, [r0]
    cmp  r2, r1
    bgeu __rt_ck_skip         ; reading above threshold: no checkpoint
    chkpt
    ret
__rt_ck_skip:
    li   r0, 0
    ret
)";
}

} // namespace edb::runtime
