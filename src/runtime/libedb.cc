#include "runtime/libedb.hh"

#include <sstream>

#include "mcu/mmio_map.hh"
#include "runtime/protocol_defs.hh"

namespace edb::runtime {

std::string
mmioEquates()
{
    namespace m = mcu::mmio;
    std::ostringstream s;
    auto equ = [&s](const char *name, std::uint32_t value) {
        s << ".equ " << name << ", " << value << "\n";
    };
    equ("GPIO_OUT", m::gpioOut);
    equ("GPIO_IN", m::gpioIn);
    equ("GPIO_TOGGLE", m::gpioToggle);
    equ("UART0_TX", m::uart0Tx);
    equ("UART0_STATUS", m::uart0Status);
    equ("UART0_RX", m::uart0Rx);
    equ("I2C_ADDR", m::i2cAddr);
    equ("I2C_REG", m::i2cReg);
    equ("I2C_DATA", m::i2cData);
    equ("I2C_CTRL", m::i2cCtrl);
    equ("I2C_STATUS", m::i2cStatus);
    equ("ADC_CTRL", m::adcCtrl);
    equ("ADC_STATUS", m::adcStatus);
    equ("ADC_VALUE", m::adcValue);
    equ("RF_RXST", m::rfRxStatus);
    equ("RF_RXLEN", m::rfRxLen);
    equ("RF_RXBYTE", m::rfRxByte);
    equ("RF_TXBYTE", m::rfTxByte);
    equ("RF_TXCTRL", m::rfTxCtrl);
    equ("RF_TXST", m::rfTxStatus);
    equ("MARKER", m::marker);
    equ("DBGREQ", m::dbgReq);
    equ("DBGUART_TX", m::dbgUartTx);
    equ("DBGUART_STATUS", m::dbgUartStatus);
    equ("DBGUART_RX", m::dbgUartRx);
    equ("BKPTMASK", m::bkptMask);
    equ("LED", m::led);
    equ("CYCLE_LO", m::cycleLo);
    equ("CYCLE_HI", m::cycleHi);
    equ("CHKPT_CTL", m::chkptCtl);
    equ("SLEEP", m::sleep);
    equ("FR_SYNC", proto::syncByte);
    equ("MSG_ASSERT", proto::msgAssertFail);
    equ("MSG_BKPT", proto::msgBkptHit);
    equ("MSG_GUARD_BEGIN", proto::msgGuardBegin);
    equ("MSG_GUARD_END", proto::msgGuardEnd);
    equ("MSG_PRINTF", proto::msgPrintf);
    equ("MSG_READ_REPLY", proto::msgReadReply);
    equ("MSG_WRITE_ACK", proto::msgWriteAck);
    equ("MSG_WAIT_RESTORE", proto::msgWaitRestore);
    equ("ACK_ACTIVE", proto::ackActive);
    equ("ACK_RESTORED", proto::ackRestored);
    equ("CMD_READ", proto::cmdRead);
    equ("CMD_WRITE", proto::cmdWrite);
    equ("CMD_RESUME", proto::cmdResume);
    equ("CMD_STATUS", proto::cmdStatus);
    return s.str();
}

std::string
programHeader()
{
    return mmioEquates() + R"(
.org 0x4000
.entry main
.irq edb_dbg_isr
)";
}

std::string
libedbSource()
{
    // The target-side half of the debugger protocol. r0-r4 scratch,
    // r5+ preserved (routines save what they use). Every message in
    // both directions travels framed (SYNC | LEN | PAYLOAD | CRC-8);
    // the last event is kept in FRAM so it can be retransmitted when
    // the host probes with CMD_STATUS after losing a frame.
    return R"(
; ---------------------------------------------------------------
; libEDB target-side runtime
; ---------------------------------------------------------------

; watch_point(id): encode the id onto the code-marker lines.
; Cost: one store -- "holding a GPIO pin high for one cycle"
; (paper section 4.1.3).
edb_watchpoint:
    la   r0, MARKER
    stw  r1, [r0]
    ret

; __edb_tx: transmit r1 over the debug UART (busy-wait).
__edb_tx:
    la   r0, DBGUART_STATUS
__edb_tx_wait:
    ldw  r2, [r0]
    andi r2, r2, 1
    cmpi r2, 0
    bne  __edb_tx_wait
    la   r0, DBGUART_TX
    stw  r1, [r0]
    ret

; __edb_rx: receive one byte from the debug UART into r0.
__edb_rx:
    la   r2, DBGUART_STATUS
__edb_rx_wait:
    ldw  r3, [r2]
    andi r3, r3, 2
    cmpi r3, 0
    beq  __edb_rx_wait
    la   r2, DBGUART_RX
    ldw  r0, [r2]
    ret

; __edb_crc8: r0 = crc8 step of (crc r1, byte r2); poly 0x07.
__edb_crc8:
    xor  r0, r1, r2
    li   r3, 8
__edb_crc8_loop:
    andi r4, r0, 0x80
    shli r0, r0, 1
    andi r0, r0, 0xFF
    cmpi r4, 0
    beq  __edb_crc8_next
    xori r0, r0, 0x07
__edb_crc8_next:
    addi r3, r3, -1
    cmpi r3, 0
    bne  __edb_crc8_loop
    ret

; __edb_fr_begin: start a TX frame of payload length r1
; (SYNC, LEN; running CRC seeded over LEN in __edb_txcrc).
__edb_fr_begin:
    push r5
    mov  r5, r1
    li   r1, FR_SYNC
    call __edb_tx
    mov  r1, r5
    call __edb_tx
    li   r1, 0
    mov  r2, r5
    call __edb_crc8
    la   r2, __edb_txcrc
    stw  r0, [r2]
    pop  r5
    ret

; __edb_fr_byte: transmit payload byte r1 and fold it into the CRC.
__edb_fr_byte:
    push r5
    mov  r5, r1
    call __edb_tx
    la   r0, __edb_txcrc
    ldw  r1, [r0]
    mov  r2, r5
    call __edb_crc8
    la   r2, __edb_txcrc
    stw  r0, [r2]
    pop  r5
    ret

; __edb_fr_end: close the TX frame by sending the CRC.
__edb_fr_end:
    la   r0, __edb_txcrc
    ldw  r1, [r0]
    call __edb_tx
    ret

; __edb_fr_word: frame r1 as 4 little-endian payload bytes.
__edb_fr_word:
    push r6
    mov  r6, r1
    andi r1, r6, 0xFF
    call __edb_fr_byte
    shri r1, r6, 8
    andi r1, r1, 0xFF
    call __edb_fr_byte
    shri r1, r6, 16
    andi r1, r1, 0xFF
    call __edb_fr_byte
    shri r1, r6, 24
    andi r1, r1, 0xFF
    call __edb_fr_byte
    pop  r6
    ret

; __edb_rx_frame: block until one CRC-valid frame arrives; payload
; lands in __edb_rxbuf, r0 = length. Corrupt frames are discarded
; and the hunt restarts at the next SYNC, so a damaged command can
; never be acted on. A frame that lost a byte on the wire slides the
; NEXT frame's SYNC into this frame's CRC slot; without the resync
; check below that would also destroy the next frame (its SYNC is
; consumed, so the hunt eats the whole frame looking for one).
__edb_rx_frame:
    push r5
    push r6
    push r7
__edb_rxf_hunt:
    call __edb_rx
    cmpi r0, FR_SYNC
    bne  __edb_rxf_hunt
__edb_rxf_len:
    call __edb_rx
    cmpi r0, FR_SYNC
    beq  __edb_rxf_len
    cmpi r0, 0
    beq  __edb_rxf_hunt
    cmpi r0, 17
    bgeu __edb_rxf_hunt
    mov  r5, r0
    li   r1, 0
    mov  r2, r5
    call __edb_crc8
    mov  r6, r0
    li   r7, 0
__edb_rxf_data:
    call __edb_rx
    la   r2, __edb_rxbuf
    add  r2, r2, r7
    stb  r0, [r2]
    mov  r1, r6
    mov  r2, r0
    call __edb_crc8
    mov  r6, r0
    addi r7, r7, 1
    cmp  r7, r5
    bltu __edb_rxf_data
    call __edb_rx
    cmp  r0, r6
    beq  __edb_rxf_done
    cmpi r0, FR_SYNC
    beq  __edb_rxf_len
    br   __edb_rxf_hunt
__edb_rxf_done:
    mov  r0, r5
    pop  r7
    pop  r6
    pop  r5
    ret

; __edb_req_ack: raise the debug-request line and wait until the
; debugger has saved the energy level and engaged tethered power
; (a framed ACK_ACTIVE; anything else is ignored).
__edb_req_ack:
    la   r0, DBGREQ
    li   r4, 1
    stw  r4, [r0]
__edb_req_ack_wait:
    call __edb_rx_frame
    la   r0, __edb_rxbuf
    ldb  r0, [r0]
    cmpi r0, ACK_ACTIVE
    bne  __edb_req_ack_wait
    ret

; __edb_req_drop: release the debug-request line.
__edb_req_drop:
    la   r0, DBGREQ
    li   r4, 0
    stw  r4, [r0]
    ret

; __edb_wait_restored: wait for the debugger to discharge the
; capacitor back to the saved level. A CMD_STATUS probe here means
; the host lost our event frame: answer MSG_WAIT_RESTORE so it can
; restore and release us anyway.
__edb_wait_restored:
    call __edb_rx_frame
    la   r0, __edb_rxbuf
    ldb  r0, [r0]
    cmpi r0, ACK_RESTORED
    beq  __edb_wr_done
    cmpi r0, CMD_STATUS
    bne  __edb_wait_restored
    li   r1, 1
    call __edb_fr_begin
    li   r1, MSG_WAIT_RESTORE
    call __edb_fr_byte
    call __edb_fr_end
    br   __edb_wait_restored
__edb_wr_done:
    ret

; __edb_send_event: (re)transmit the stored event frame
; [type, id lo, id hi]. Idempotent: CMD_STATUS replays it.
__edb_send_event:
    li   r1, 3
    call __edb_fr_begin
    la   r0, __edb_last_type
    ldw  r1, [r0]
    call __edb_fr_byte
    la   r0, __edb_last_id
    ldw  r1, [r0]
    andi r1, r1, 0xFF
    call __edb_fr_byte
    la   r0, __edb_last_id
    ldw  r1, [r0]
    shri r1, r1, 8
    andi r1, r1, 0xFF
    call __edb_fr_byte
    call __edb_fr_end
    ret

; __edb_ld_addr: r5 = little-endian word at __edb_rxbuf+1.
__edb_ld_addr:
    la   r0, __edb_rxbuf
    ldb  r5, [r0 + 1]
    ldb  r2, [r0 + 2]
    shli r2, r2, 8
    or   r5, r5, r2
    ldb  r2, [r0 + 3]
    shli r2, r2, 16
    or   r5, r5, r2
    ldb  r2, [r0 + 4]
    shli r2, r2, 24
    or   r5, r5, r2
    ret

; edb_service_loop: interactive-session command servicing. The
; debugger reads and writes the live target address space through
; these commands (paper: "full access to view and modify the
; target's memory"). Every reply is framed and writes are
; acknowledged, so the host can detect loss and retry.
edb_service_loop:
    push r5
    push r6
    push r7
__edb_svc_next:
    call __edb_rx_frame
    la   r0, __edb_rxbuf
    ldb  r0, [r0]
    cmpi r0, CMD_RESUME
    beq  __edb_svc_done
    cmpi r0, CMD_READ
    beq  __edb_svc_read
    cmpi r0, CMD_WRITE
    beq  __edb_svc_write
    cmpi r0, CMD_STATUS
    beq  __edb_svc_status
    br   __edb_svc_next
__edb_svc_done:
    pop  r7
    pop  r6
    pop  r5
    ret

__edb_svc_status:          ; host lost our event frame: replay it
    call __edb_send_event
    br   __edb_svc_next

__edb_svc_read:            ; [cmd, addr(4), len(2)] -> framed reply
    call __edb_ld_addr
    la   r0, __edb_rxbuf
    ldb  r6, [r0 + 5]
    ldb  r2, [r0 + 6]
    shli r2, r2, 8
    or   r6, r6, r2
    mov  r1, r6
    addi r1, r1, 1
    call __edb_fr_begin
    li   r1, MSG_READ_REPLY
    call __edb_fr_byte
__edb_svc_read_loop:
    cmpi r6, 0
    beq  __edb_svc_read_done
    ldb  r1, [r5]
    call __edb_fr_byte
    addi r5, r5, 1
    addi r6, r6, -1
    br   __edb_svc_read_loop
__edb_svc_read_done:
    call __edb_fr_end
    br   __edb_svc_next

__edb_svc_write:           ; [cmd, addr(4), value(4)] -> framed ack
    call __edb_ld_addr
    mov  r7, r5
    la   r0, __edb_rxbuf
    ldb  r5, [r0 + 5]
    ldb  r2, [r0 + 6]
    shli r2, r2, 8
    or   r5, r5, r2
    ldb  r2, [r0 + 7]
    shli r2, r2, 16
    or   r5, r5, r2
    ldb  r2, [r0 + 8]
    shli r2, r2, 24
    or   r5, r5, r2
    stw  r5, [r7]
    li   r1, 1
    call __edb_fr_begin
    li   r1, MSG_WRITE_ACK
    call __edb_fr_byte
    call __edb_fr_end
    br   __edb_svc_next

; assert(expr) failure path: keep-alive -- the debugger tethers the
; target before it can brown out, then opens an interactive session
; (paper section 3.3.2).
edb_assert_fail:           ; r1 = assert id
    la   r0, __edb_last_id
    stw  r1, [r0]
    la   r0, __edb_last_type
    li   r2, MSG_ASSERT
    stw  r2, [r0]
    call __edb_req_ack
    call __edb_send_event
    call edb_service_loop
    call __edb_req_drop
    ret

; break_point(id): fires only when the debugger has enabled this id
; in the passive breakpoint bitmap.
edb_breakpoint:            ; r1 = breakpoint id
    la   r0, BKPTMASK
    ldw  r0, [r0]
    mov  r2, r1
    shr  r0, r0, r2
    andi r0, r0, 1
    cmpi r0, 0
    beq  __edb_bkpt_skip
    la   r0, __edb_last_id
    stw  r1, [r0]
    la   r0, __edb_last_type
    li   r2, MSG_BKPT
    stw  r2, [r0]
    call __edb_req_ack
    call __edb_send_event
    call edb_service_loop
    call __edb_req_drop
__edb_bkpt_skip:
    ret

; energy_guard(begin): record + tether; code until the matching end
; runs on tethered power (paper section 3.3.3).
edb_energy_guard_begin:
    call __edb_req_ack
    li   r1, 1
    call __edb_fr_begin
    li   r1, MSG_GUARD_BEGIN
    call __edb_fr_byte
    call __edb_fr_end
    ret

; energy_guard(end): debugger discharges the capacitor back to the
; recorded level before releasing the target.
edb_energy_guard_end:
    li   r1, 1
    call __edb_fr_begin
    li   r1, MSG_GUARD_END
    call __edb_fr_byte
    call __edb_fr_end
    call __edb_wait_restored
    call __edb_req_drop
    ret

; printf(fmt, ...): ship the format string and argument words to the
; debugger inside an implicit energy guard; the host formats.
edb_printf:                ; r1 = fmt, r2 = nargs, r3 = argv
    push r5
    push r6
    push r7
    push r8
    mov  r5, r1
    mov  r6, r2
    mov  r7, r3
    call __edb_req_ack
    li   r8, 0
    mov  r2, r5
__edb_pf_len:              ; r8 = strlen(fmt)
    ldb  r0, [r2]
    cmpi r0, 0
    beq  __edb_pf_len_done
    addi r8, r8, 1
    addi r2, r2, 1
    br   __edb_pf_len
__edb_pf_len_done:
    shli r1, r6, 2         ; payload = type+nargs + 4*nargs + fmt+NUL
    add  r1, r1, r8
    addi r1, r1, 3
    call __edb_fr_begin
    li   r1, MSG_PRINTF
    call __edb_fr_byte
    mov  r1, r6
    call __edb_fr_byte
__edb_pf_args:
    cmpi r6, 0
    beq  __edb_pf_str
    ldw  r1, [r7]
    call __edb_fr_word
    addi r7, r7, 4
    addi r6, r6, -1
    br   __edb_pf_args
__edb_pf_str:
    ldb  r1, [r5]
    call __edb_fr_byte
    ldb  r0, [r5]
    addi r5, r5, 1
    cmpi r0, 0
    bne  __edb_pf_str
    call __edb_fr_end
    call __edb_wait_restored
    call __edb_req_drop
    pop  r8
    pop  r7
    pop  r6
    pop  r5
    ret

; Debug interrupt entry: the debugger raised the interrupt line
; (energy breakpoint or host break-in). Report and service.
edb_dbg_isr:
    push r0
    push r1
    push r2
    push r3
    push r4
    la   r0, __edb_last_type
    li   r2, MSG_BKPT
    stw  r2, [r0]
    la   r0, __edb_last_id
    la   r2, 0xFFFF
    stw  r2, [r0]
    call __edb_req_ack
    call __edb_send_event
    call edb_service_loop
    call __edb_req_drop
    pop  r4
    pop  r3
    pop  r2
    pop  r1
    pop  r0
    reti

; Link-layer state (FRAM; survives brown-out so CMD_STATUS can
; replay the last event even across a reboot).
.align
__edb_txcrc:     .word 0
__edb_last_type: .word 0
__edb_last_id:   .word 0
__edb_rxbuf:     .space 16
)";
}

} // namespace edb::runtime
