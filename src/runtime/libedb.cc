#include "runtime/libedb.hh"

#include <sstream>

#include "mcu/mmio_map.hh"
#include "runtime/protocol_defs.hh"

namespace edb::runtime {

std::string
mmioEquates()
{
    namespace m = mcu::mmio;
    std::ostringstream s;
    auto equ = [&s](const char *name, std::uint32_t value) {
        s << ".equ " << name << ", " << value << "\n";
    };
    equ("GPIO_OUT", m::gpioOut);
    equ("GPIO_IN", m::gpioIn);
    equ("GPIO_TOGGLE", m::gpioToggle);
    equ("UART0_TX", m::uart0Tx);
    equ("UART0_STATUS", m::uart0Status);
    equ("UART0_RX", m::uart0Rx);
    equ("I2C_ADDR", m::i2cAddr);
    equ("I2C_REG", m::i2cReg);
    equ("I2C_DATA", m::i2cData);
    equ("I2C_CTRL", m::i2cCtrl);
    equ("I2C_STATUS", m::i2cStatus);
    equ("ADC_CTRL", m::adcCtrl);
    equ("ADC_STATUS", m::adcStatus);
    equ("ADC_VALUE", m::adcValue);
    equ("RF_RXST", m::rfRxStatus);
    equ("RF_RXLEN", m::rfRxLen);
    equ("RF_RXBYTE", m::rfRxByte);
    equ("RF_TXBYTE", m::rfTxByte);
    equ("RF_TXCTRL", m::rfTxCtrl);
    equ("RF_TXST", m::rfTxStatus);
    equ("MARKER", m::marker);
    equ("DBGREQ", m::dbgReq);
    equ("DBGUART_TX", m::dbgUartTx);
    equ("DBGUART_STATUS", m::dbgUartStatus);
    equ("DBGUART_RX", m::dbgUartRx);
    equ("BKPTMASK", m::bkptMask);
    equ("LED", m::led);
    equ("CYCLE_LO", m::cycleLo);
    equ("CYCLE_HI", m::cycleHi);
    equ("CHKPT_CTL", m::chkptCtl);
    equ("SLEEP", m::sleep);
    equ("MSG_ASSERT", proto::msgAssertFail);
    equ("MSG_BKPT", proto::msgBkptHit);
    equ("MSG_GUARD_BEGIN", proto::msgGuardBegin);
    equ("MSG_GUARD_END", proto::msgGuardEnd);
    equ("MSG_PRINTF", proto::msgPrintf);
    equ("ACK_ACTIVE", proto::ackActive);
    equ("ACK_RESTORED", proto::ackRestored);
    equ("CMD_READ", proto::cmdRead);
    equ("CMD_WRITE", proto::cmdWrite);
    equ("CMD_RESUME", proto::cmdResume);
    return s.str();
}

std::string
programHeader()
{
    return mmioEquates() + R"(
.org 0x4000
.entry main
.irq edb_dbg_isr
)";
}

std::string
libedbSource()
{
    // The target-side half of the debugger protocol. r0-r4 scratch,
    // r5+ preserved (edb_service_loop and edb_printf save what they
    // use).
    return R"(
; ---------------------------------------------------------------
; libEDB target-side runtime
; ---------------------------------------------------------------

; watch_point(id): encode the id onto the code-marker lines.
; Cost: one store -- "holding a GPIO pin high for one cycle"
; (paper section 4.1.3).
edb_watchpoint:
    la   r0, MARKER
    stw  r1, [r0]
    ret

; __edb_tx: transmit r1 over the debug UART (busy-wait).
__edb_tx:
    la   r0, DBGUART_STATUS
__edb_tx_wait:
    ldw  r2, [r0]
    andi r2, r2, 1
    cmpi r2, 0
    bne  __edb_tx_wait
    la   r0, DBGUART_TX
    stw  r1, [r0]
    ret

; __edb_rx: receive one byte from the debug UART into r0.
__edb_rx:
    la   r2, DBGUART_STATUS
__edb_rx_wait:
    ldw  r3, [r2]
    andi r3, r3, 2
    cmpi r3, 0
    beq  __edb_rx_wait
    la   r2, DBGUART_RX
    ldw  r0, [r2]
    ret

; __edb_tx_word: transmit r1 as 4 little-endian bytes.
__edb_tx_word:
    push r5
    mov  r5, r1
    andi r1, r5, 0xFF
    call __edb_tx
    shri r1, r5, 8
    andi r1, r1, 0xFF
    call __edb_tx
    shri r1, r5, 16
    andi r1, r1, 0xFF
    call __edb_tx
    shri r1, r5, 24
    call __edb_tx
    pop  r5
    ret

; __edb_req_ack: raise the debug-request line and wait until the
; debugger has saved the energy level and engaged tethered power.
__edb_req_ack:
    la   r0, DBGREQ
    li   r4, 1
    stw  r4, [r0]
    call __edb_rx
    ret

; __edb_req_drop: release the debug-request line.
__edb_req_drop:
    la   r0, DBGREQ
    li   r4, 0
    stw  r4, [r0]
    ret

; edb_service_loop: interactive-session command servicing. The
; debugger reads and writes the live target address space through
; these commands (paper: "full access to view and modify the
; target's memory").
edb_service_loop:
    push r5
    push r6
    push r7
__edb_svc_next:
    call __edb_rx
    cmpi r0, CMD_RESUME
    beq  __edb_svc_done
    cmpi r0, CMD_READ
    beq  __edb_svc_read
    cmpi r0, CMD_WRITE
    beq  __edb_svc_write
    br   __edb_svc_next
__edb_svc_done:
    pop  r7
    pop  r6
    pop  r5
    ret

__edb_svc_addr:            ; read 4 bytes LE into r5
    call __edb_rx
    mov  r5, r0
    call __edb_rx
    shli r0, r0, 8
    or   r5, r5, r0
    call __edb_rx
    shli r0, r0, 16
    or   r5, r5, r0
    call __edb_rx
    shli r0, r0, 24
    or   r5, r5, r0
    ret

__edb_svc_read:            ; addr(4), len(2); reply raw bytes
    call __edb_svc_addr
    call __edb_rx
    mov  r6, r0
    call __edb_rx
    shli r0, r0, 8
    or   r6, r6, r0
__edb_svc_read_loop:
    cmpi r6, 0
    beq  __edb_svc_next
    ldb  r1, [r5]
    call __edb_tx
    addi r5, r5, 1
    addi r6, r6, -1
    br   __edb_svc_read_loop

__edb_svc_write:           ; addr(4), value(4)
    call __edb_svc_addr
    mov  r7, r5
    call __edb_svc_addr
    stw  r5, [r7]
    br   __edb_svc_next

; assert(expr) failure path: keep-alive -- the debugger tethers the
; target before it can brown out, then opens an interactive session
; (paper section 3.3.2).
edb_assert_fail:           ; r1 = assert id
    push r1
    call __edb_req_ack
    li   r1, MSG_ASSERT
    call __edb_tx
    pop  r1
    push r1
    andi r1, r1, 0xFF
    call __edb_tx
    pop  r1
    shri r1, r1, 8
    andi r1, r1, 0xFF
    call __edb_tx
    call edb_service_loop
    call __edb_req_drop
    ret

; break_point(id): fires only when the debugger has enabled this id
; in the passive breakpoint bitmap.
edb_breakpoint:            ; r1 = breakpoint id
    la   r0, BKPTMASK
    ldw  r0, [r0]
    mov  r2, r1
    shr  r0, r0, r2
    andi r0, r0, 1
    cmpi r0, 0
    beq  __edb_bkpt_skip
    push r1
    call __edb_req_ack
    li   r1, MSG_BKPT
    call __edb_tx
    pop  r1
    push r1
    andi r1, r1, 0xFF
    call __edb_tx
    pop  r1
    shri r1, r1, 8
    andi r1, r1, 0xFF
    call __edb_tx
    call edb_service_loop
    call __edb_req_drop
    ret
__edb_bkpt_skip:
    ret

; energy_guard(begin): record + tether; code until the matching end
; runs on tethered power (paper section 3.3.3).
edb_energy_guard_begin:
    call __edb_req_ack
    li   r1, MSG_GUARD_BEGIN
    call __edb_tx
    ret

; energy_guard(end): debugger discharges the capacitor back to the
; recorded level before releasing the target.
edb_energy_guard_end:
    li   r1, MSG_GUARD_END
    call __edb_tx
    call __edb_rx
    call __edb_req_drop
    ret

; printf(fmt, ...): ship the format string and argument words to the
; debugger inside an implicit energy guard; the host formats.
edb_printf:                ; r1 = fmt, r2 = nargs, r3 = argv
    push r5
    push r6
    push r7
    mov  r5, r1
    mov  r6, r2
    mov  r7, r3
    call __edb_req_ack
    li   r1, MSG_PRINTF
    call __edb_tx
    mov  r1, r6
    call __edb_tx
__edb_pf_args:
    cmpi r6, 0
    beq  __edb_pf_str
    ldw  r1, [r7]
    call __edb_tx_word
    addi r7, r7, 4
    addi r6, r6, -1
    br   __edb_pf_args
__edb_pf_str:
    ldb  r1, [r5]
    call __edb_tx
    ldb  r0, [r5]
    addi r5, r5, 1
    cmpi r0, 0
    bne  __edb_pf_str
    call __edb_rx
    call __edb_req_drop
    pop  r7
    pop  r6
    pop  r5
    ret

; Debug interrupt entry: the debugger raised the interrupt line
; (energy breakpoint or host break-in). Report and service.
edb_dbg_isr:
    push r0
    push r1
    push r2
    push r3
    push r4
    call __edb_req_ack
    li   r1, MSG_BKPT
    call __edb_tx
    li   r1, 0xFF
    call __edb_tx
    li   r1, 0xFF
    call __edb_tx
    call edb_service_loop
    call __edb_req_drop
    pop  r4
    pop  r3
    pop  r2
    pop  r1
    pop  r0
    reti
)";
}

} // namespace edb::runtime
