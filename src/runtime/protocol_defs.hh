/**
 * @file
 * Wire protocol between the target-side libEDB runtime and the EDB
 * board, over the dedicated GPIO request line + debug UART
 * (paper Section 4.2: "the library implements the target-side half
 * of the protocol for communicating with the debugger over a
 * dedicated GPIO line and a UART link").
 *
 * These byte values are shared between the C++ debugger firmware
 * (src/edb) and the generated target assembly (src/runtime), which
 * emits them as .equ constants.
 *
 * Framing: every message, in both directions, travels inside a frame
 *
 *     SYNC(0x7E) | LEN | PAYLOAD[LEN] | CRC-8(LEN ++ PAYLOAD)
 *
 * where CRC-8 uses the polynomial 0x07 (x^8 + x^2 + x + 1, MSB
 * first, zero init). The first payload byte is the message type. A
 * corrupted, dropped or duplicated byte at worst kills one frame:
 * the receiver re-hunts for SYNC and (host side) times out stale
 * partial frames, so a single bad byte can no longer desync the
 * link permanently.
 */

#ifndef EDB_RUNTIME_PROTOCOL_DEFS_HH
#define EDB_RUNTIME_PROTOCOL_DEFS_HH

#include <cstddef>
#include <cstdint>

namespace edb::runtime::proto {

/// @name Frame layer
/// @{
/** Start-of-frame marker (may also occur inside payloads; the CRC
 *  and length plausibility checks weed out false syncs). */
constexpr std::uint8_t syncByte = 0x7E;
/** CRC-8 polynomial (x^8 + x^2 + x + 1). */
constexpr std::uint8_t crcPoly = 0x07;
/** Largest payload the host parser accepts. */
constexpr std::size_t maxPayload = 255;
/** Largest payload the target-side receive buffer accepts
 *  (commands are at most 1 + 4 + 4 bytes). */
constexpr std::size_t maxCommandPayload = 12;
/// @}

/// @name Target -> debugger message types (first payload byte)
/// @{
constexpr std::uint8_t msgAssertFail = 0x01; ///< + id lo, id hi
constexpr std::uint8_t msgBkptHit = 0x02;    ///< + id lo, id hi
constexpr std::uint8_t msgGuardBegin = 0x03;
constexpr std::uint8_t msgGuardEnd = 0x04;
constexpr std::uint8_t msgPrintf = 0x05; ///< + nargs, args, fmt..NUL
constexpr std::uint8_t msgReadReply = 0x06; ///< + data bytes
constexpr std::uint8_t msgWriteAck = 0x07;
/** Reply to cmdStatus while waiting for ackRestored: tells the host
 *  a guard-end/printf event frame was lost so it can restore and
 *  release the target anyway (degraded, but never deadlocked). */
constexpr std::uint8_t msgWaitRestore = 0x08;
/// @}

/// @name Debugger -> target message types
/// @{
constexpr std::uint8_t ackActive = 0xA0;  ///< Tether engaged; proceed.
constexpr std::uint8_t ackRestored = 0xA1; ///< Energy restored; go.
constexpr std::uint8_t cmdRead = 0x81;  ///< + addr(4 LE), len(2 LE)
constexpr std::uint8_t cmdWrite = 0x82; ///< + addr(4 LE), value(4 LE)
constexpr std::uint8_t cmdResume = 0x83;
/** Link probe: "what are you waiting for?" The target answers by
 *  retransmitting its pending event (service loop) or with
 *  msgWaitRestore (restore wait). */
constexpr std::uint8_t cmdStatus = 0x84;
/// @}

/** Breakpoint id reported by the energy-breakpoint IRQ handler. */
constexpr std::uint16_t energyBkptId = 0xFFFF;

/** CRC-8 (poly 0x07, zero init) over a byte, incrementally. */
constexpr std::uint8_t
crc8Step(std::uint8_t crc, std::uint8_t byte)
{
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
        crc = (crc & 0x80u)
                  ? static_cast<std::uint8_t>((crc << 1) ^ crcPoly)
                  : static_cast<std::uint8_t>(crc << 1);
    }
    return crc;
}

/** CRC-8 over a buffer. */
inline std::uint8_t
crc8(const std::uint8_t *data, std::size_t len, std::uint8_t seed = 0)
{
    std::uint8_t crc = seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = crc8Step(crc, data[i]);
    return crc;
}

} // namespace edb::runtime::proto

#endif // EDB_RUNTIME_PROTOCOL_DEFS_HH
