/**
 * @file
 * Wire protocol between the target-side libEDB runtime and the EDB
 * board, over the dedicated GPIO request line + debug UART
 * (paper Section 4.2: "the library implements the target-side half
 * of the protocol for communicating with the debugger over a
 * dedicated GPIO line and a UART link").
 *
 * These byte values are shared between the C++ debugger firmware
 * (src/edb) and the generated target assembly (src/runtime), which
 * emits them as .equ constants.
 */

#ifndef EDB_RUNTIME_PROTOCOL_DEFS_HH
#define EDB_RUNTIME_PROTOCOL_DEFS_HH

#include <cstdint>

namespace edb::runtime::proto {

/// @name Target -> debugger frame types
/// @{
constexpr std::uint8_t msgAssertFail = 0x01; ///< + id lo, id hi
constexpr std::uint8_t msgBkptHit = 0x02;    ///< + id lo, id hi
constexpr std::uint8_t msgGuardBegin = 0x03;
constexpr std::uint8_t msgGuardEnd = 0x04;
constexpr std::uint8_t msgPrintf = 0x05; ///< + nargs, args, fmt..NUL
/// @}

/// @name Debugger -> target bytes
/// @{
constexpr std::uint8_t ackActive = 0xA0;  ///< Tether engaged; proceed.
constexpr std::uint8_t ackRestored = 0xA1; ///< Energy restored; go.
constexpr std::uint8_t cmdRead = 0x81;  ///< + addr(4 LE), len(2 LE)
constexpr std::uint8_t cmdWrite = 0x82; ///< + addr(4 LE), value(4 LE)
constexpr std::uint8_t cmdResume = 0x83;
/// @}

/** Breakpoint id reported by the energy-breakpoint IRQ handler. */
constexpr std::uint16_t energyBkptId = 0xFFFF;

} // namespace edb::runtime::proto

#endif // EDB_RUNTIME_PROTOCOL_DEFS_HH
