#include "runtime/scheduler.hh"

#include <sstream>

namespace edb::runtime {

std::string
dewdropSource(unsigned sleep_cycles)
{
    std::ostringstream s;
    s << ".equ DW_SLEEP_CYCLES, " << sleep_cycles << "\n";
    s << R"(
; ---------------------------------------------------------------
; Dewdrop-style energy-aware scheduling runtime
; ---------------------------------------------------------------

; dw_wait_energy: r1 = ADC code the capacitor must reach before the
; caller's task is dispatched. Sleeps (uA-level draw) between
; measurements instead of busy-waiting (mA-level draw), so waiting
; does not consume the charge being waited for.
; Returns r0 = sleep periods taken.
dw_wait_energy:
    push r5
    li   r5, 0                 ; sleep-period counter
__dw_check:
    la   r0, ADC_CTRL
    li   r2, 0                 ; channel 0 = Vcap
    stw  r2, [r0]
    la   r0, ADC_STATUS
__dw_adc_wait:
    ldw  r2, [r0]
    andi r2, r2, 2
    cmpi r2, 0
    beq  __dw_adc_wait
    la   r0, ADC_VALUE
    ldw  r2, [r0]
    cmp  r2, r1
    bgeu __dw_ready            ; enough energy: dispatch
    la   r0, SLEEP             ; timed low-power wait
    la   r2, DW_SLEEP_CYCLES
    stw  r2, [r0]
    addi r5, r5, 1
    br   __dw_check
__dw_ready:
    mov  r0, r5
    pop  r5
    ret
)";
    return s.str();
}

} // namespace edb::runtime
