/**
 * @file
 * libEDB: the target-side runtime library, as EH32 assembly.
 *
 * The real system statically links ~1200 lines of C into the target
 * application (paper Section 4.2, Table 1). Here the same interface
 * is provided as assembly routines that guest applications link by
 * concatenating `libedbSource()` into their program text.
 *
 * Exported routines (calling convention: args in r1..r3, result in
 * r0; r0-r4 are caller-saved scratch, r5+ preserved):
 *
 *   edb_watchpoint         r1 = id          watch_point(id)
 *   edb_assert_fail        r1 = id          assert() failure path
 *   edb_breakpoint         r1 = id          break_point(id)
 *   edb_energy_guard_begin                  energy_guard(begin)
 *   edb_energy_guard_end                    energy_guard(end)
 *   edb_printf             r1 = fmt addr,   printf(fmt, ...)
 *                          r2 = nargs,
 *                          r3 = argv addr
 *   edb_dbg_isr            (interrupt vector for energy breakpoints)
 */

#ifndef EDB_RUNTIME_LIBEDB_HH
#define EDB_RUNTIME_LIBEDB_HH

#include <string>

namespace edb::runtime {

/**
 * `.equ` definitions for the MMIO register map and protocol bytes.
 * Include once at the top of any guest program.
 */
std::string mmioEquates();

/**
 * The libEDB routine bodies. Append after the application code
 * (routines are position-assembled wherever they land).
 */
std::string libedbSource();

/**
 * Convenience: equates + a standard program prologue that jumps to
 * `main`. The caller supplies `main` and appends `libedbSource()`.
 */
std::string programHeader();

} // namespace edb::runtime

#endif // EDB_RUNTIME_LIBEDB_HH
