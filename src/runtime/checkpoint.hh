/**
 * @file
 * Mementos/QuickRecall-style checkpointing runtime (target side).
 *
 * The paper assumes "a checkpointing mechanism that periodically
 * collects a checkpoint of volatile execution context (i.e., register
 * file and stack) like prior work [11, 20, 24]" (Section 2). This
 * runtime provides the target-side assembly: a voltage-conditional
 * checkpoint (Mementos-style: measure Vcap with the on-chip ADC and
 * checkpoint when it falls below a threshold) and an unconditional
 * checkpoint, both built on the hardware checkpoint unit (QuickRecall
 * style).
 *
 * Routines (same convention as libEDB: args r1.., r0-r4 scratch):
 *
 *   rt_checkpoint            unconditional checkpoint; r0 = success
 *   rt_checkpoint_if_low     r1 = ADC threshold code; checkpoints
 *                            only when Vcap reads at/below it.
 *                            r0 = 1 if a checkpoint was taken.
 */

#ifndef EDB_RUNTIME_CHECKPOINT_HH
#define EDB_RUNTIME_CHECKPOINT_HH

#include <string>

namespace edb::runtime {

/** Assembly source of the checkpointing runtime. */
std::string checkpointSource();

/**
 * ADC code corresponding to a capacitor voltage for the target's
 * on-chip ADC (bits/vref must match the device's AdcConfig).
 */
unsigned adcCodeForVolts(double volts, unsigned bits = 12,
                         double vref_volts = 3.0);

} // namespace edb::runtime

#endif // EDB_RUNTIME_CHECKPOINT_HH
