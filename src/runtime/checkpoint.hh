/**
 * @file
 * Mementos/QuickRecall-style checkpointing runtime (target side).
 *
 * The paper assumes "a checkpointing mechanism that periodically
 * collects a checkpoint of volatile execution context (i.e., register
 * file and stack) like prior work [11, 20, 24]" (Section 2). This
 * runtime provides the target-side assembly: a voltage-conditional
 * checkpoint (Mementos-style: measure Vcap with the on-chip ADC and
 * checkpoint when it falls below a threshold) and an unconditional
 * checkpoint, both built on the hardware checkpoint unit (QuickRecall
 * style).
 *
 * Routines (same convention as libEDB: args r1.., r0-r4 scratch):
 *
 *   rt_checkpoint            unconditional checkpoint; r0 = success
 *   rt_checkpoint_if_low     r1 = ADC threshold code; checkpoints
 *                            only when Vcap reads strictly below it
 *                            (a reading equal to the threshold does
 *                            not checkpoint). r0 = 1 if a checkpoint
 *                            was taken.
 */

#ifndef EDB_RUNTIME_CHECKPOINT_HH
#define EDB_RUNTIME_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "sim/snapshot.hh"

namespace edb::runtime {

/**
 * Checkpoint frame format shared by the hardware checkpoint unit
 * (mcu/mcu.cc), the NV consistency auditor and the tests. Two frames
 * (slots) live back to back at `McuConfig::checkpointBase`; commits
 * double-buffer between them and a restore picks the winner by
 * sequence number (DESIGN.md §11 has the full commit state machine).
 *
 * Frame layout, word offsets from the slot base:
 *
 *   +0   magic       "CHKP"
 *   +4   seq         commit sequence number (written last)
 *   +8   pc          resume address
 *   +12  flags
 *   +16  sp
 *   +20  stackLen    bytes of stack image
 *   +24  r0..r15
 *   +88  stack image (stackLen bytes)
 *   +align4          seal (Sealed discipline only): CRC-32 of the
 *                    payload, seeded with seq
 *
 * The seal binds payload and sequence number together: a torn commit
 * can never produce a frame whose stored seal matches a CRC computed
 * with its stored seq, so the boot-time recovery scan detects it and
 * falls back to the previous sealed frame.
 */
namespace ckfmt {

constexpr std::uint32_t magic = 0x43484B50; // "CHKP"
constexpr std::uint32_t magicOff = 0;
constexpr std::uint32_t seqOff = 4;
constexpr std::uint32_t pcOff = 8;
constexpr std::uint32_t flagsOff = 12;
constexpr std::uint32_t spOff = 16;
constexpr std::uint32_t stackLenOff = 20;
constexpr std::uint32_t regsOff = 24;
constexpr std::uint32_t stackOff = regsOff + 16 * 4;

constexpr std::uint32_t
align4(std::uint32_t n)
{
    return (n + 3u) & ~3u;
}

/** Offset of the Sealed discipline's seal word. */
constexpr std::uint32_t
sealOff(std::uint32_t stack_bytes)
{
    return stackOff + align4(stack_bytes);
}

/**
 * The seal: CRC-32 of the frame payload ([pc, end-of-stack)), seeded
 * with the commit sequence number. `frame` points at the slot base.
 */
inline std::uint32_t
frameCrc(const std::uint8_t *frame, std::uint32_t stack_bytes,
         std::uint32_t seq)
{
    return sim::crc32(frame + pcOff, stackOff - pcOff + stack_bytes,
                      seq);
}

} // namespace ckfmt

/** Assembly source of the checkpointing runtime. */
std::string checkpointSource();

/**
 * ADC code corresponding to a capacitor voltage for the target's
 * on-chip ADC (bits/vref must match the device's AdcConfig).
 */
unsigned adcCodeForVolts(double volts, unsigned bits = 12,
                         double vref_volts = 3.0);

} // namespace edb::runtime

#endif // EDB_RUNTIME_CHECKPOINT_HH
