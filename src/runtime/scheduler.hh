/**
 * @file
 * Dewdrop-style energy-aware task scheduling runtime (target side).
 *
 * The paper's related work (Section 6.2): "Dewdrop [4] is a scheduler
 * that brings an RF-harvesting device into and out of deep sleep
 * states that consume little energy. Dewdrop schedules tasks based on
 * the likelihood that they will successfully execute, given the
 * available energy."
 *
 * This runtime provides the core mechanism: before dispatching a
 * task, measure the stored energy with the on-chip ADC and, if it is
 * below the task's threshold, enter a timed low-power wait instead
 * of burning the remaining charge polling. Thresholds are exactly
 * what EDB's watchpoint energy profile (paper Section 5.3.3) lets a
 * developer calibrate.
 *
 * Routines (libEDB conventions: args r1.., r0-r4 scratch):
 *
 *   dw_wait_energy    r1 = ADC threshold code; returns only once
 *                     Vcap reads at/above it, sleeping in low-power
 *                     chunks between measurements. r0 = number of
 *                     sleep periods taken.
 */

#ifndef EDB_RUNTIME_SCHEDULER_HH
#define EDB_RUNTIME_SCHEDULER_HH

#include <string>

namespace edb::runtime {

/**
 * Assembly source of the energy-aware scheduling runtime.
 * @param sleep_cycles Core cycles per low-power wait chunk
 *        (default 20000 = 5 ms at 4 MHz).
 */
std::string dewdropSource(unsigned sleep_cycles = 20000);

} // namespace edb::runtime

#endif // EDB_RUNTIME_SCHEDULER_HH
